//===- pec_metrics_check.cpp - Prometheus exposition validator ------------===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
// Validates a `pec --metrics-out` Prometheus text exposition file:
//
//   pec_metrics_check <metrics.prom> [required-family]...
//
// Checks the text-format grammar line by line (`# TYPE` headers, sample
// lines `name{labels} value`), and for every histogram family that its
// cumulative `_bucket{le=...}` series is non-decreasing in le order, ends
// in `le="+Inf"`, and that the `+Inf` bucket equals `_count`. Any family
// names passed as extra arguments must be present. Exit 0 on success,
// 1 with a diagnostic on the first violation. Shared by the
// `check_metrics_exposition` CTest and the CI Prometheus step, so the
// exposition format cannot silently drift from what a scraper accepts.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  std::string Name;   ///< Metric name (before any label braces).
  std::string Le;     ///< The le label value, when present.
  double Value = 0;
  std::string Labels; ///< Full label string minus le, for grouping.
};

int fail(int Line, const std::string &Msg) {
  std::fprintf(stderr, "pec_metrics_check: line %d: %s\n", Line, Msg.c_str());
  return 1;
}

bool validMetricChar(char C, bool First) {
  if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
      C == ':')
    return true;
  return !First && C >= '0' && C <= '9';
}

/// Parses `name` or `name{k="v",...}` into \p S. Returns false on
/// malformed syntax.
bool parseSample(const std::string &Text, Sample &S) {
  size_t I = 0;
  while (I < Text.size() && validMetricChar(Text[I], I == 0))
    ++I;
  if (I == 0)
    return false;
  S.Name = Text.substr(0, I);
  if (I < Text.size() && Text[I] == '{') {
    size_t Close = Text.find('}', I);
    if (Close == std::string::npos)
      return false;
    std::string LabelText = Text.substr(I + 1, Close - I - 1);
    // Split on top-level commas; values contain no commas in our output.
    std::stringstream Ls(LabelText);
    std::string Pair;
    std::vector<std::string> Kept;
    while (std::getline(Ls, Pair, ',')) {
      size_t Eq = Pair.find('=');
      if (Eq == std::string::npos || Pair.size() < Eq + 3 ||
          Pair[Eq + 1] != '"' || Pair.back() != '"')
        return false;
      std::string Key = Pair.substr(0, Eq);
      std::string Value = Pair.substr(Eq + 2, Pair.size() - Eq - 3);
      if (Key == "le")
        S.Le = Value;
      else
        Kept.push_back(Pair);
    }
    for (size_t K = 0; K < Kept.size(); ++K)
      S.Labels += (K ? "," : "") + Kept[K];
    I = Close + 1;
  }
  while (I < Text.size() && (Text[I] == ' ' || Text[I] == '\t'))
    ++I;
  if (I >= Text.size())
    return false;
  char *End = nullptr;
  S.Value = std::strtod(Text.c_str() + I, &End);
  return End && *End == '\0';
}

double leValue(const std::string &Le) {
  if (Le == "+Inf")
    return 1e308 * 10; // inf
  return std::strtod(Le.c_str(), nullptr);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pec_metrics_check <metrics.prom> [family]...\n");
    return 2;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "pec_metrics_check: cannot open '%s'\n", argv[1]);
    return 1;
  }

  std::map<std::string, std::string> FamilyType; // family -> counter/...
  std::set<std::string> SeenFamilies;
  // (family, labels) -> ordered bucket samples, _sum, _count.
  std::map<std::pair<std::string, std::string>, std::vector<Sample>> Buckets;
  std::map<std::pair<std::string, std::string>, double> Counts;
  std::set<std::pair<std::string, std::string>> Sums;

  std::string Line;
  int LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      std::stringstream Ls(Line);
      std::string Hash, Keyword, Family, Type;
      Ls >> Hash >> Keyword >> Family >> Type;
      if (Keyword == "TYPE") {
        if (Type != "counter" && Type != "gauge" && Type != "histogram")
          return fail(LineNo, "unknown TYPE '" + Type + "'");
        if (FamilyType.count(Family))
          return fail(LineNo, "duplicate TYPE for '" + Family + "'");
        FamilyType[Family] = Type;
      }
      continue; // HELP and other comments pass through.
    }
    Sample S;
    if (!parseSample(Line, S))
      return fail(LineNo, "malformed sample: " + Line);

    // Attribute the sample to its family (strip histogram suffixes).
    std::string Family = S.Name;
    bool IsBucket = false, IsCount = false, IsSum = false;
    auto StripSuffix = [&](const char *Suffix, bool &Flag) {
      size_t N = std::string(Suffix).size();
      if (Family.size() > N &&
          Family.compare(Family.size() - N, N, Suffix) == 0 &&
          FamilyType.count(Family.substr(0, Family.size() - N))) {
        Family = Family.substr(0, Family.size() - N);
        Flag = true;
      }
    };
    StripSuffix("_bucket", IsBucket);
    if (!IsBucket)
      StripSuffix("_count", IsCount);
    if (!IsBucket && !IsCount)
      StripSuffix("_sum", IsSum);
    if (!FamilyType.count(Family))
      return fail(LineNo, "sample '" + S.Name + "' has no TYPE header");
    SeenFamilies.insert(Family);

    const std::string &Type = FamilyType[Family];
    if (Type == "histogram") {
      auto Key = std::make_pair(Family, S.Labels);
      if (IsBucket) {
        if (S.Le.empty())
          return fail(LineNo, "bucket sample without le label: " + Line);
        Buckets[Key].push_back(S);
      } else if (IsCount) {
        Counts[Key] = S.Value;
      } else if (IsSum) {
        Sums.insert(Key);
      } else {
        return fail(LineNo, "bare sample for histogram family '" + Family +
                                "' (want _bucket/_sum/_count)");
      }
    } else if (IsBucket || IsCount || IsSum) {
      return fail(LineNo, "histogram suffix on " + Type + " family '" +
                              Family + "'");
    } else if (Type == "counter" && S.Value < 0) {
      return fail(LineNo, "negative counter value: " + Line);
    }
  }

  // Histogram invariants per (family, labels) series.
  for (const auto &[Key, Series] : Buckets) {
    const std::string Desc =
        Key.first + (Key.second.empty() ? "" : "{" + Key.second + "}");
    double PrevLe = -1, PrevCount = -1;
    for (const Sample &S : Series) {
      double Le = leValue(S.Le);
      if (Le <= PrevLe)
        return fail(0, Desc + ": bucket le values not increasing");
      if (S.Value < PrevCount)
        return fail(0, Desc + ": cumulative bucket counts decreased");
      PrevLe = Le;
      PrevCount = S.Value;
    }
    if (Series.empty() || Series.back().Le != "+Inf")
      return fail(0, Desc + ": bucket series does not end in le=\"+Inf\"");
    auto CountIt = Counts.find(Key);
    if (CountIt == Counts.end())
      return fail(0, Desc + ": missing _count");
    if (Series.back().Value != CountIt->second)
      return fail(0, Desc + ": +Inf bucket disagrees with _count");
    if (!Sums.count(Key))
      return fail(0, Desc + ": missing _sum");
  }

  // Families the caller insists on (CI passes the acceptance-critical set).
  for (int A = 2; A < argc; ++A)
    if (!SeenFamilies.count(argv[A])) {
      std::fprintf(stderr,
                   "pec_metrics_check: required family '%s' not present\n",
                   argv[A]);
      return 1;
    }

  std::printf("pec_metrics_check: %s OK (%zu families)\n", argv[1],
              SeenFamilies.size());
  return 0;
}
