//===- Lexer.cpp -----------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace pec;

namespace {

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Source) : Source(Source) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> Toks;
    while (true) {
      skipWhitespaceAndComments();
      if (atEnd()) {
        Toks.push_back(Token{TokKind::Eof, {}, 0, loc()});
        return Toks;
      }
      Expected<Token> T = lexOne();
      if (!T)
        return T.error();
      Toks.push_back(*T);
    }
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  SourceLoc loc() const { return SourceLoc{Line, Column}; }

  void skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      break;
    }
  }

  Token make(TokKind K, size_t Start, SourceLoc L) {
    return Token{K, Source.substr(Start, Pos - Start), 0, L};
  }

  Expected<Token> lexOne() {
    SourceLoc L = loc();
    size_t Start = Pos;
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        advance();
      return make(TokKind::Ident, Start, L);
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        advance();
      Token T = make(TokKind::Number, Start, L);
      int64_t V = 0;
      for (char D : T.Text)
        V = V * 10 + (D - '0');
      T.Number = V;
      return T;
    }

    switch (C) {
    case '(': return make(TokKind::LParen, Start, L);
    case ')': return make(TokKind::RParen, Start, L);
    case '{': return make(TokKind::LBrace, Start, L);
    case '}': return make(TokKind::RBrace, Start, L);
    case '[': return make(TokKind::LBracket, Start, L);
    case ']': return make(TokKind::RBracket, Start, L);
    case ';': return make(TokKind::Semi, Start, L);
    case ',': return make(TokKind::Comma, Start, L);
    case '@': return make(TokKind::At, Start, L);
    case '.': return make(TokKind::Dot, Start, L);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokKind::Assign, Start, L);
      }
      return make(TokKind::Colon, Start, L);
    case '+':
      if (peek() == '+') {
        advance();
        return make(TokKind::PlusPlus, Start, L);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::PlusAssign, Start, L);
      }
      return make(TokKind::Plus, Start, L);
    case '-':
      if (peek() == '-') {
        advance();
        return make(TokKind::MinusMinus, Start, L);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::MinusAssign, Start, L);
      }
      return make(TokKind::Minus, Start, L);
    case '*': return make(TokKind::Star, Start, L);
    case '/': return make(TokKind::Slash, Start, L);
    case '%': return make(TokKind::Percent, Start, L);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokKind::Le, Start, L);
      }
      return make(TokKind::Lt, Start, L);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge, Start, L);
      }
      return make(TokKind::Gt, Start, L);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Start, L);
      }
      if (peek() == '>') {
        advance();
        return make(TokKind::Arrow, Start, L);
      }
      return Diag("expected '==' or '=>' after '='", L);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ne, Start, L);
      }
      return make(TokKind::Bang, Start, L);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AmpAmp, Start, L);
      }
      return Diag("expected '&&'", L);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::PipePipe, Start, L);
      }
      return Diag("expected '||'", L);
    default:
      return Diag(std::string("unexpected character '") + C + "'", L);
    }
  }

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace

Expected<std::vector<Token>> pec::tokenize(std::string_view Source) {
  return LexerImpl(Source).run();
}
