//===- Rule.cpp - Side-condition constructors ------------------------------===//

#include "lang/Rule.h"

#include <functional>

using namespace pec;

SideCondPtr SideCond::mkTrue() {
  static SideCondPtr TheTrue = [] {
    auto C = std::shared_ptr<SideCond>(new SideCond());
    C->Kind = SideCondKind::True;
    return C;
  }();
  return TheTrue;
}

SideCondPtr SideCond::mkAtom(Symbol FactName, std::vector<FactArg> Args,
                             Symbol AtLabel) {
  auto C = std::shared_ptr<SideCond>(new SideCond());
  C->Kind = SideCondKind::Atom;
  C->FactName = FactName;
  C->Args = std::move(Args);
  C->AtLabel = AtLabel;
  return C;
}

SideCondPtr SideCond::mkAnd(std::vector<SideCondPtr> Cs) {
  if (Cs.empty())
    return mkTrue();
  if (Cs.size() == 1)
    return Cs[0];
  auto C = std::shared_ptr<SideCond>(new SideCond());
  C->Kind = SideCondKind::And;
  C->Children = std::move(Cs);
  return C;
}

SideCondPtr SideCond::mkOr(std::vector<SideCondPtr> Cs) {
  assert(!Cs.empty() && "or of nothing");
  if (Cs.size() == 1)
    return Cs[0];
  auto C = std::shared_ptr<SideCond>(new SideCond());
  C->Kind = SideCondKind::Or;
  C->Children = std::move(Cs);
  return C;
}

SideCondPtr SideCond::mkNot(SideCondPtr Child) {
  auto C = std::shared_ptr<SideCond>(new SideCond());
  C->Kind = SideCondKind::Not;
  C->Children.push_back(std::move(Child));
  return C;
}

SideCondPtr SideCond::mkForall(std::vector<Symbol> Bound, SideCondPtr Child) {
  auto C = std::shared_ptr<SideCond>(new SideCond());
  C->Kind = SideCondKind::Forall;
  C->Bound = std::move(Bound);
  C->Children.push_back(std::move(Child));
  return C;
}

void SideCond::forEachAtom(
    const std::function<void(const SideCond &)> &Fn) const {
  if (Kind == SideCondKind::Atom) {
    Fn(*this);
    return;
  }
  for (const SideCondPtr &C : Children)
    C->forEachAtom(Fn);
}
