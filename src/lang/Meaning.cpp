//===- Meaning.cpp - Meaning AST factories ----------------------------------------===//

#include "lang/Meaning.h"

using namespace pec;

MeaningTermPtr MeaningTerm::mkState() {
  static MeaningTermPtr S = [] {
    auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
    T->Kind = MeaningTermKind::StateS;
    return T;
  }();
  return S;
}

MeaningTermPtr MeaningTerm::mkStep(MeaningTermPtr State, Symbol StmtParam) {
  assert(State->isStateSorted() && "step's first argument must be a state");
  auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
  T->Kind = MeaningTermKind::Step;
  T->Lhs = std::move(State);
  T->Param = StmtParam;
  return T;
}

MeaningTermPtr MeaningTerm::mkEval(MeaningTermPtr State, Symbol ExprParam) {
  assert(State->isStateSorted() && "eval's first argument must be a state");
  auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
  T->Kind = MeaningTermKind::Eval;
  T->Lhs = std::move(State);
  T->Param = ExprParam;
  return T;
}

MeaningTermPtr MeaningTerm::mkInt(int64_t V) {
  auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
  T->Kind = MeaningTermKind::IntLit;
  T->IntValue = V;
  return T;
}

MeaningTermPtr MeaningTerm::mkBinary(MeaningTermKind K, MeaningTermPtr L,
                                     MeaningTermPtr R) {
  assert((K == MeaningTermKind::Add || K == MeaningTermKind::Sub ||
          K == MeaningTermKind::Mul) &&
         "not an arithmetic kind");
  assert(!L->isStateSorted() && !R->isStateSorted() &&
         "arithmetic over states");
  auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
  T->Kind = K;
  T->Lhs = std::move(L);
  T->Rhs = std::move(R);
  return T;
}

MeaningTermPtr MeaningTerm::mkNeg(MeaningTermPtr Operand) {
  assert(!Operand->isStateSorted() && "negating a state");
  auto T = std::shared_ptr<MeaningTerm>(new MeaningTerm());
  T->Kind = MeaningTermKind::Neg;
  T->Lhs = std::move(Operand);
  return T;
}

MeaningFormPtr MeaningForm::mkCmp(MeaningFormKind K, MeaningTermPtr L,
                                  MeaningTermPtr R) {
  assert((K == MeaningFormKind::Eq || K == MeaningFormKind::Ne ||
          K == MeaningFormKind::Lt || K == MeaningFormKind::Le) &&
         "not a comparison kind");
  assert(L->isStateSorted() == R->isStateSorted() &&
         "comparison across sorts");
  assert((!L->isStateSorted() ||
          (K == MeaningFormKind::Eq || K == MeaningFormKind::Ne)) &&
         "states only compare with == / !=");
  auto F = std::shared_ptr<MeaningForm>(new MeaningForm());
  F->Kind = K;
  F->L = std::move(L);
  F->R = std::move(R);
  return F;
}

MeaningFormPtr MeaningForm::mkConnective(MeaningFormKind K,
                                         std::vector<MeaningFormPtr> Cs) {
  assert((K == MeaningFormKind::And || K == MeaningFormKind::Or ||
          K == MeaningFormKind::Not || K == MeaningFormKind::Implies) &&
         "not a connective kind");
  auto F = std::shared_ptr<MeaningForm>(new MeaningForm());
  F->Kind = K;
  F->Children = std::move(Cs);
  return F;
}

MeaningFormPtr MeaningForm::mkTrue() {
  static MeaningFormPtr T = [] {
    auto F = std::shared_ptr<MeaningForm>(new MeaningForm());
    F->Kind = MeaningFormKind::True;
    return F;
  }();
  return T;
}
