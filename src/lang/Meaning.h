//===- Meaning.h - Semantic meanings of side-condition facts ----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's meaning language (Fig. 4): every side-condition fact has a
/// *semantic meaning*, a first-order formula over the program state `s` at
/// the fact's location, built from
///
///   * `s` — the state at the point where the fact holds,
///   * `eval(t, E)` — the value of fact parameter `E` (an expression) in
///     state term `t`,
///   * `step(t, S)` — the state after running fact parameter `S` (a
///     statement) from state term `t`,
///
/// integer arithmetic, comparisons, state equality, and the boolean
/// connectives. Declarations are written
///
///   fact DoesNotModify(S, E) has meaning
///     eval(s, E) == eval(step(s, S), E);
///
/// and instantiated by the PEC pipeline at the symbolic state of every
/// visit to the fact's labeled location (InsertAssumes).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_MEANING_H
#define PEC_LANG_MEANING_H

#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace pec {

class MeaningTerm;
class MeaningForm;
using MeaningTermPtr = std::shared_ptr<const MeaningTerm>;
using MeaningFormPtr = std::shared_ptr<const MeaningForm>;

enum class MeaningTermKind : uint8_t {
  StateS,    ///< The distinguished state `s`.
  Step,      ///< step(state, stmt-param).
  Eval,      ///< eval(state, expr-param).
  IntLit,
  Add, Sub, Mul, Neg,
};

/// A term of the meaning language (state- or integer-sorted).
class MeaningTerm {
public:
  MeaningTermKind kind() const { return Kind; }

  Symbol param() const {
    assert(Kind == MeaningTermKind::Step || Kind == MeaningTermKind::Eval);
    return Param;
  }
  int64_t intValue() const {
    assert(Kind == MeaningTermKind::IntLit);
    return IntValue;
  }
  const MeaningTermPtr &lhs() const { return Lhs; }
  const MeaningTermPtr &rhs() const { return Rhs; }

  /// True for terms denoting program states.
  bool isStateSorted() const {
    return Kind == MeaningTermKind::StateS || Kind == MeaningTermKind::Step;
  }

  static MeaningTermPtr mkState();
  static MeaningTermPtr mkStep(MeaningTermPtr State, Symbol StmtParam);
  static MeaningTermPtr mkEval(MeaningTermPtr State, Symbol ExprParam);
  static MeaningTermPtr mkInt(int64_t V);
  static MeaningTermPtr mkBinary(MeaningTermKind K, MeaningTermPtr L,
                                 MeaningTermPtr R);
  static MeaningTermPtr mkNeg(MeaningTermPtr T);

private:
  MeaningTerm() = default;
  MeaningTermKind Kind = MeaningTermKind::StateS;
  Symbol Param;
  int64_t IntValue = 0;
  MeaningTermPtr Lhs, Rhs;
};

enum class MeaningFormKind : uint8_t {
  Eq, Ne, Lt, Le, ///< Comparisons (Eq/Ne also over states).
  And, Or, Not, Implies,
  True,
};

/// A formula of the meaning language.
class MeaningForm {
public:
  MeaningFormKind kind() const { return Kind; }
  const MeaningTermPtr &lhsTerm() const { return L; }
  const MeaningTermPtr &rhsTerm() const { return R; }
  const std::vector<MeaningFormPtr> &children() const { return Children; }

  static MeaningFormPtr mkCmp(MeaningFormKind K, MeaningTermPtr L,
                              MeaningTermPtr R);
  static MeaningFormPtr mkConnective(MeaningFormKind K,
                                     std::vector<MeaningFormPtr> Cs);
  static MeaningFormPtr mkTrue();

private:
  MeaningForm() = default;
  MeaningFormKind Kind = MeaningFormKind::True;
  MeaningTermPtr L, R;
  std::vector<MeaningFormPtr> Children;
};

/// A fact declaration: `fact Name(Params...) has meaning Body;`.
struct FactDecl {
  Symbol Name;
  std::vector<Symbol> Params;
  MeaningFormPtr Body;
  /// Code-property facts hold at every state (hoistable assumptions);
  /// flow-sensitive facts hold only where control actually reaches the
  /// label. User declarations default to flow-sensitive (the safe choice).
  bool Universal = false;
};

} // namespace pec

#endif // PEC_LANG_MEANING_H
