//===- Lexer.h - Tokenizer for the PEC language -----------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for programs, rules, and side conditions.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_LEXER_H
#define PEC_LANG_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pec {

enum class TokKind : uint8_t {
  Eof,
  Ident,      ///< Identifiers and keywords (keyword-ness decided in parser).
  Number,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, At, Dot,
  // Operators.
  Assign,     ///< :=
  Arrow,      ///< =>
  PlusPlus, MinusMinus,
  PlusAssign, MinusAssign, ///< += -=
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne,
  AmpAmp, PipePipe, Bang,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string_view Text;
  int64_t Number = 0;
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(std::string_view S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Tokenizes \p Source. The returned tokens reference \p Source, which must
/// outlive them. `//` line comments are skipped.
Expected<std::vector<Token>> tokenize(std::string_view Source);

} // namespace pec

#endif // PEC_LANG_LEXER_H
