//===- Parser.h - Parser for programs, rules, side conditions ---*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the PEC language. Grammar (informally):
///
/// \code
///   program   := stmt*
///   stmt      := [IDENT ':'] core
///   core      := 'skip' ';'
///              | 'assume' '(' expr ')' ';'
///              | 'if' '(' expr ')' block ['else' block]
///              | 'while' '(' expr ')' block
///              | 'for' '(' var ':=' expr ';' expr ';' var ('++'|'--') ')'
///                 block
///              | METASTMT ['[' expr {',' expr} ']'] ';'       (rule mode)
///              | lvalue (':='|'+='|'-=') expr ';'
///              | var ('++'|'--') ';'
///   block     := '{' stmt* '}' | stmt
///   lvalue    := var | var '[' expr ']'
///   rule      := 'rule' IDENT '{' stmt* '}' '=>' '{' stmt* '}'
///                 ['where' sidecond]
///   sidecond  := orcond;  or/and/not with the usual precedence
///   atom      := IDENT '(' factarg {',' factarg} ')' '@' IDENT
///              | 'forall' var {',' var} '.' prim
/// \endcode
///
/// In *parameterized* mode, the paper's naming convention assigns
/// meta-variable kinds: identifiers starting with `S` are statement
/// meta-variables, with `E` expression meta-variables, and any other
/// upper-case-initial identifier is a variable meta-variable. Lower-case
/// identifiers are concrete program variables in both modes.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_PARSER_H
#define PEC_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Meaning.h"
#include "lang/Rule.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace pec {

enum class ParseMode {
  Concrete,      ///< Meta-variables are rejected.
  Parameterized, ///< Upper-case identifiers denote meta-variables.
};

/// Parses a statement list into a single statement (a Seq if more than one).
Expected<StmtPtr> parseProgram(std::string_view Source,
                               ParseMode Mode = ParseMode::Concrete);

/// Parses a single expression.
Expected<ExprPtr> parseExpr(std::string_view Source,
                            ParseMode Mode = ParseMode::Concrete);

/// Parses a `rule ... => ... where ...` definition (always parameterized).
Expected<Rule> parseRule(std::string_view Source);

/// Parses a file of rule definitions.
Expected<std::vector<Rule>> parseRules(std::string_view Source);

/// A rule file: rules plus user fact declarations (paper Fig. 4 syntax:
/// `fact Name(Params) has meaning <formula>;`).
struct RuleFile {
  std::vector<Rule> Rules;
  std::vector<FactDecl> Facts;
};

/// Parses a file of interleaved rule and fact declarations.
Expected<RuleFile> parseRuleFile(std::string_view Source);

/// Parses a single fact declaration (for tests).
Expected<FactDecl> parseFactDecl(std::string_view Source);

/// Parses a standalone side condition (for tests).
Expected<SideCondPtr> parseSideCond(std::string_view Source);

} // namespace pec

#endif // PEC_LANG_PARSER_H
