//===- Ast.h - AST for the PEC intermediate language ------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the C-like intermediate language of the paper,
/// extended with meta-variables so the same AST represents both concrete
/// programs and *parameterized* programs (paper Sec. 2.1):
///
///   * expression meta-variables (`E`, `E1`, ...) range over expressions,
///   * variable meta-variables (`I`, `J`, ...) range over program variables,
///   * statement meta-variables (`S`, `S0`, ...) range over single-entry
///     single-exit statement regions; `S1[I+1]` is a statement meta-variable
///     with a *hole* filled by the expression `I+1`.
///
/// AST nodes are immutable and shared (`std::shared_ptr<const T>`); rewrites
/// build new trees with structural sharing.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_AST_H
#define PEC_LANG_AST_H

#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace pec {

class Expr;
class Stmt;
using ExprPtr = std::shared_ptr<const Expr>;
using StmtPtr = std::shared_ptr<const Stmt>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Mod,          // arithmetic
  Lt, Le, Gt, Ge, Eq, Ne,           // comparisons (int-valued: 0/1)
  And, Or                           // logical (on truthiness of ints)
};

enum class UnOp : uint8_t { Neg, Not };

/// Returns a printable spelling for \p Op ("+", "<=", ...).
const char *spelling(BinOp Op);
const char *spelling(UnOp Op);
/// True for Lt/Le/Gt/Ge/Eq/Ne/And/Or, i.e. operators whose result is 0/1.
bool isBooleanOp(BinOp Op);

enum class ExprKind : uint8_t {
  IntLit,    ///< Integer literal.
  Var,       ///< Concrete program variable.
  MetaVar,   ///< Variable meta-variable (ranges over variable *names*).
  MetaExpr,  ///< Expression meta-variable (ranges over whole expressions).
  ArrayRead, ///< a[i] where `a` is a (possibly meta) variable.
  Binary,
  Unary,
};

/// An expression node. All expressions are integer-valued; comparisons and
/// logical operators yield 0/1 as in C.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc location() const { return Loc; }

  // IntLit
  int64_t intValue() const {
    assert(Kind == ExprKind::IntLit);
    return IntValue;
  }

  // Var / MetaVar / MetaExpr / ArrayRead (array name)
  Symbol name() const {
    assert(Kind == ExprKind::Var || Kind == ExprKind::MetaVar ||
           Kind == ExprKind::MetaExpr || Kind == ExprKind::ArrayRead);
    return Name;
  }
  /// For ArrayRead: true if the array name is a variable meta-variable.
  bool arrayIsMeta() const {
    assert(Kind == ExprKind::ArrayRead);
    return ArrayMeta;
  }

  // ArrayRead
  const ExprPtr &index() const {
    assert(Kind == ExprKind::ArrayRead);
    return Lhs;
  }

  // Binary / Unary
  BinOp binOp() const {
    assert(Kind == ExprKind::Binary);
    return BOp;
  }
  UnOp unOp() const {
    assert(Kind == ExprKind::Unary);
    return UOp;
  }
  const ExprPtr &lhs() const {
    assert(Kind == ExprKind::Binary || Kind == ExprKind::Unary);
    return Lhs;
  }
  const ExprPtr &rhs() const {
    assert(Kind == ExprKind::Binary);
    return Rhs;
  }

  /// True if this is a MetaVar or MetaExpr, or contains one anywhere.
  bool isParameterized() const;

  // Factories.
  static ExprPtr mkInt(int64_t V, SourceLoc Loc = {});
  static ExprPtr mkVar(Symbol Name, SourceLoc Loc = {});
  static ExprPtr mkMetaVar(Symbol Name, SourceLoc Loc = {});
  static ExprPtr mkMetaExpr(Symbol Name, SourceLoc Loc = {});
  static ExprPtr mkArrayRead(Symbol Array, bool ArrayMeta, ExprPtr Index,
                             SourceLoc Loc = {});
  static ExprPtr mkBinary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc = {});
  static ExprPtr mkUnary(UnOp Op, ExprPtr E, SourceLoc Loc = {});

private:
  Expr() = default;

  ExprKind Kind = ExprKind::IntLit;
  SourceLoc Loc;
  int64_t IntValue = 0;
  Symbol Name;
  bool ArrayMeta = false;
  BinOp BOp = BinOp::Add;
  UnOp UOp = UnOp::Neg;
  ExprPtr Lhs; // Binary lhs / Unary operand / ArrayRead index.
  ExprPtr Rhs;
};

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

/// The target of an assignment: either a scalar variable (possibly a variable
/// meta-variable) or an array element.
struct LValue {
  Symbol Name;          ///< Variable or array name.
  bool IsMeta = false;  ///< Name is a variable meta-variable.
  ExprPtr Index;        ///< Null for scalars; the index for array elements.

  bool isArrayElem() const { return Index != nullptr; }

  static LValue scalar(Symbol Name, bool IsMeta = false) {
    return LValue{Name, IsMeta, nullptr};
  }
  static LValue arrayElem(Symbol Name, ExprPtr Index, bool IsMeta = false) {
    return LValue{Name, IsMeta, std::move(Index)};
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Skip,
  Assign,   ///< lvalue := expr
  Seq,      ///< { s1; s2; ... }
  If,       ///< if (c) s1 else s2
  While,    ///< while (c) s
  For,      ///< for (i := lo; i </<=/>/>= bound; i++/--) s   (sugar kept
            ///  structured so the Permute module can recognize loop nests)
  Assume,   ///< assume(c) — blocks unless c holds; used to model branches and
            ///  side-condition meanings (paper Sec. 3)
  MetaStmt, ///< Statement meta-variable, optionally with hole arguments.
};

/// A statement node. Statements may carry a label (`L1: s`), which side
/// conditions reference via `fact@L1`.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc location() const { return Loc; }

  /// The statement's label, or the empty symbol.
  Symbol label() const { return Label; }

  // Assign
  const LValue &target() const {
    assert(Kind == StmtKind::Assign);
    return Target;
  }
  const ExprPtr &value() const {
    assert(Kind == StmtKind::Assign);
    return Value;
  }

  // Seq
  const std::vector<StmtPtr> &stmts() const {
    assert(Kind == StmtKind::Seq);
    return Children;
  }

  // If / While / Assume / For
  const ExprPtr &cond() const {
    assert(Kind == StmtKind::If || Kind == StmtKind::While ||
           Kind == StmtKind::Assume || Kind == StmtKind::For);
    return Value;
  }
  const StmtPtr &thenStmt() const {
    assert(Kind == StmtKind::If);
    return Children[0];
  }
  /// Null if there is no else branch.
  const StmtPtr &elseStmt() const {
    assert(Kind == StmtKind::If);
    return Children[1];
  }
  const StmtPtr &body() const {
    assert(Kind == StmtKind::While || Kind == StmtKind::For);
    return Children[0];
  }

  // For: `for (IndexVar := init(); cond(); IndexVar += stepDelta()) body()`.
  Symbol indexVar() const {
    assert(Kind == StmtKind::For);
    return Name;
  }
  bool indexIsMeta() const {
    assert(Kind == StmtKind::For);
    return NameMeta;
  }
  const ExprPtr &init() const {
    assert(Kind == StmtKind::For);
    return Init;
  }
  int64_t stepDelta() const {
    assert(Kind == StmtKind::For);
    return StepDelta;
  }

  // MetaStmt
  Symbol metaName() const {
    assert(Kind == StmtKind::MetaStmt);
    return Name;
  }
  /// Hole arguments (`S1[I+1]` has one hole argument `I+1`); empty for plain
  /// statement meta-variables.
  const std::vector<ExprPtr> &holeArgs() const {
    assert(Kind == StmtKind::MetaStmt);
    return Holes;
  }

  /// True if this statement contains any meta-variable (statement,
  /// expression, or variable).
  bool isParameterized() const;

  // Factories. `Label` may be empty.
  static StmtPtr mkSkip(Symbol Label = {}, SourceLoc Loc = {});
  static StmtPtr mkAssign(LValue Target, ExprPtr Value, Symbol Label = {},
                          SourceLoc Loc = {});
  static StmtPtr mkSeq(std::vector<StmtPtr> Stmts, Symbol Label = {},
                       SourceLoc Loc = {});
  static StmtPtr mkIf(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                      Symbol Label = {}, SourceLoc Loc = {});
  static StmtPtr mkWhile(ExprPtr Cond, StmtPtr Body, Symbol Label = {},
                         SourceLoc Loc = {});
  static StmtPtr mkFor(Symbol IndexVar, bool IndexIsMeta, ExprPtr Init,
                       ExprPtr Cond, int64_t StepDelta, StmtPtr Body,
                       Symbol Label = {}, SourceLoc Loc = {});
  static StmtPtr mkAssume(ExprPtr Cond, Symbol Label = {}, SourceLoc Loc = {});
  static StmtPtr mkMetaStmt(Symbol Name, std::vector<ExprPtr> Holes = {},
                            Symbol Label = {}, SourceLoc Loc = {});

  /// Returns a copy of \p S carrying label \p NewLabel.
  static StmtPtr withLabel(const StmtPtr &S, Symbol NewLabel);

private:
  Stmt() = default;

  StmtKind Kind = StmtKind::Skip;
  SourceLoc Loc;
  Symbol Label;
  LValue Target;
  ExprPtr Value; // Assign value / If-While-Assume-For condition.
  ExprPtr Init;  // For initializer.
  int64_t StepDelta = 1;
  Symbol Name; // MetaStmt name / For index variable.
  bool NameMeta = false;
  std::vector<StmtPtr> Children;
  std::vector<ExprPtr> Holes;
};

} // namespace pec

#endif // PEC_LANG_AST_H
