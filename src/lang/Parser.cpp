//===- Parser.cpp - Recursive-descent parser --------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cctype>

using namespace pec;

namespace {

/// Kinds an identifier can take in parameterized mode.
enum class IdentClass { Concrete, StmtMeta, ExprMeta, VarMeta };

bool isKeyword(std::string_view S) {
  return S == "skip" || S == "if" || S == "else" || S == "while" ||
         S == "for" || S == "assume" || S == "rule" || S == "where" ||
         S == "forall" || S == "true" || S == "false";
}

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, ParseMode Mode)
      : Toks(std::move(Toks)), Mode(Mode) {}

  Expected<StmtPtr> parseProgramTop() {
    Expected<StmtPtr> S = parseStmtList(TokKind::Eof);
    if (!S)
      return S;
    if (!cur().is(TokKind::Eof))
      return err("trailing input after program");
    return S;
  }

  Expected<ExprPtr> parseExprTop() {
    Expected<ExprPtr> E = parseExpr();
    if (!E)
      return E;
    if (!cur().is(TokKind::Eof))
      return err("trailing input after expression");
    return E;
  }

  Expected<Rule> parseRuleTop() {
    Expected<Rule> R = parseOneRule();
    if (!R)
      return R;
    if (!cur().is(TokKind::Eof))
      return err("trailing input after rule");
    return R;
  }

  Expected<std::vector<Rule>> parseRulesTop() {
    std::vector<Rule> Rules;
    while (!cur().is(TokKind::Eof)) {
      Expected<Rule> R = parseOneRule();
      if (!R)
        return R.error();
      Rules.push_back(R.take());
    }
    return Rules;
  }

  Expected<RuleFile> parseRuleFileTop() {
    RuleFile File;
    while (!cur().is(TokKind::Eof)) {
      if (cur().isIdent("fact")) {
        Expected<FactDecl> F = parseOneFactDecl();
        if (!F)
          return F.error();
        File.Facts.push_back(F.take());
        continue;
      }
      Expected<Rule> R = parseOneRule();
      if (!R)
        return R.error();
      File.Rules.push_back(R.take());
    }
    return File;
  }

  Expected<FactDecl> parseFactDeclTop() {
    Expected<FactDecl> F = parseOneFactDecl();
    if (!F)
      return F;
    if (!cur().is(TokKind::Eof))
      return err("trailing input after fact declaration");
    return F;
  }

  //===--------------------------------------------------------------------===//
  // Fact declarations and the meaning language (paper Fig. 4)
  //===--------------------------------------------------------------------===//

  Expected<FactDecl> parseOneFactDecl() {
    if (!cur().isIdent("fact"))
      return err("expected 'fact'");
    next();
    if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
      return err("expected fact name");
    FactDecl Decl;
    Decl.Name = Symbol::get(cur().Text);
    next();
    if (auto D = expect(TokKind::LParen, "'(' after the fact name"))
      return *D;
    while (!cur().is(TokKind::RParen)) {
      if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
        return err("expected fact parameter name");
      Decl.Params.push_back(Symbol::get(cur().Text));
      next();
      if (cur().is(TokKind::Comma))
        next();
    }
    next(); // ')'
    if (!cur().isIdent("has"))
      return err("expected 'has meaning' after the parameter list");
    next();
    if (!cur().isIdent("meaning"))
      return err("expected 'meaning' after 'has'");
    next();
    Expected<MeaningFormPtr> Body = parseMeaningForm(Decl.Params);
    if (!Body)
      return Body.error();
    Decl.Body = Body.take();
    if (cur().is(TokKind::Semi))
      next();
    return Decl;
  }

  bool isParam(const std::vector<Symbol> &Params, std::string_view Name) {
    for (Symbol P : Params)
      if (P.str() == Name)
        return true;
    return false;
  }

  Expected<MeaningFormPtr> parseMeaningForm(const std::vector<Symbol> &Ps) {
    // implies (right associative, lowest precedence).
    Expected<MeaningFormPtr> L = parseMeaningOr(Ps);
    if (!L)
      return L;
    if (!cur().is(TokKind::Arrow))
      return L;
    next();
    Expected<MeaningFormPtr> R = parseMeaningForm(Ps);
    if (!R)
      return R;
    return MeaningForm::mkConnective(MeaningFormKind::Implies,
                                     {L.take(), R.take()});
  }

  Expected<MeaningFormPtr> parseMeaningOr(const std::vector<Symbol> &Ps) {
    Expected<MeaningFormPtr> L = parseMeaningAnd(Ps);
    if (!L)
      return L;
    std::vector<MeaningFormPtr> Cs{L.take()};
    while (cur().is(TokKind::PipePipe)) {
      next();
      Expected<MeaningFormPtr> R = parseMeaningAnd(Ps);
      if (!R)
        return R;
      Cs.push_back(R.take());
    }
    if (Cs.size() == 1)
      return Cs[0];
    return MeaningForm::mkConnective(MeaningFormKind::Or, std::move(Cs));
  }

  Expected<MeaningFormPtr> parseMeaningAnd(const std::vector<Symbol> &Ps) {
    Expected<MeaningFormPtr> L = parseMeaningAtom(Ps);
    if (!L)
      return L;
    std::vector<MeaningFormPtr> Cs{L.take()};
    while (cur().is(TokKind::AmpAmp)) {
      next();
      Expected<MeaningFormPtr> R = parseMeaningAtom(Ps);
      if (!R)
        return R;
      Cs.push_back(R.take());
    }
    if (Cs.size() == 1)
      return Cs[0];
    return MeaningForm::mkConnective(MeaningFormKind::And, std::move(Cs));
  }

  Expected<MeaningFormPtr> parseMeaningAtom(const std::vector<Symbol> &Ps) {
    if (cur().is(TokKind::Bang)) {
      next();
      Expected<MeaningFormPtr> C = parseMeaningAtom(Ps);
      if (!C)
        return C;
      return MeaningForm::mkConnective(MeaningFormKind::Not, {C.take()});
    }
    if (cur().isIdent("true")) {
      next();
      return MeaningForm::mkTrue();
    }
    // '(' may open a parenthesized formula or a parenthesized term:
    // try the formula reading first and backtrack on failure.
    if (cur().is(TokKind::LParen)) {
      size_t Saved = Pos;
      next();
      Expected<MeaningFormPtr> Inner = parseMeaningForm(Ps);
      if (Inner && cur().is(TokKind::RParen)) {
        next();
        return Inner;
      }
      Pos = Saved;
    }
    Expected<MeaningTermPtr> L = parseMeaningTerm(Ps);
    if (!L)
      return L.error();
    MeaningFormKind K;
    bool Flip = false;
    switch (cur().Kind) {
    case TokKind::EqEq: K = MeaningFormKind::Eq; break;
    case TokKind::Ne:   K = MeaningFormKind::Ne; break;
    case TokKind::Lt:   K = MeaningFormKind::Lt; break;
    case TokKind::Le:   K = MeaningFormKind::Le; break;
    case TokKind::Gt:   K = MeaningFormKind::Lt; Flip = true; break;
    case TokKind::Ge:   K = MeaningFormKind::Le; Flip = true; break;
    default:
      return err("expected a comparison in the fact meaning");
    }
    next();
    Expected<MeaningTermPtr> R = parseMeaningTerm(Ps);
    if (!R)
      return R.error();
    MeaningTermPtr Lhs = L.take(), Rhs = R.take();
    if (Flip)
      std::swap(Lhs, Rhs);
    if (Lhs->isStateSorted() != Rhs->isStateSorted())
      return err("meaning comparison mixes states and integers");
    if (Lhs->isStateSorted() &&
        (K == MeaningFormKind::Lt || K == MeaningFormKind::Le))
      return err("states only compare with '==' or '!='");
    return MeaningForm::mkCmp(K, std::move(Lhs), std::move(Rhs));
  }

  Expected<MeaningTermPtr> parseMeaningTerm(const std::vector<Symbol> &Ps) {
    Expected<MeaningTermPtr> L = parseMeaningProd(Ps);
    if (!L)
      return L;
    MeaningTermPtr Result = L.take();
    while (cur().is(TokKind::Plus) || cur().is(TokKind::Minus)) {
      MeaningTermKind K = cur().is(TokKind::Plus) ? MeaningTermKind::Add
                                                  : MeaningTermKind::Sub;
      next();
      Expected<MeaningTermPtr> R = parseMeaningProd(Ps);
      if (!R)
        return R;
      if (Result->isStateSorted() || (*R)->isStateSorted())
        return err("arithmetic over state terms");
      Result = MeaningTerm::mkBinary(K, Result, R.take());
    }
    return Result;
  }

  Expected<MeaningTermPtr> parseMeaningProd(const std::vector<Symbol> &Ps) {
    Expected<MeaningTermPtr> L = parseMeaningPrimary(Ps);
    if (!L)
      return L;
    MeaningTermPtr Result = L.take();
    while (cur().is(TokKind::Star)) {
      next();
      Expected<MeaningTermPtr> R = parseMeaningPrimary(Ps);
      if (!R)
        return R;
      if (Result->isStateSorted() || (*R)->isStateSorted())
        return err("arithmetic over state terms");
      Result = MeaningTerm::mkBinary(MeaningTermKind::Mul, Result, R.take());
    }
    return Result;
  }

  Expected<MeaningTermPtr>
  parseMeaningPrimary(const std::vector<Symbol> &Ps) {
    if (cur().is(TokKind::Number)) {
      int64_t V = cur().Number;
      next();
      return MeaningTerm::mkInt(V);
    }
    if (cur().is(TokKind::Minus)) {
      next();
      Expected<MeaningTermPtr> T = parseMeaningPrimary(Ps);
      if (!T)
        return T;
      if ((*T)->isStateSorted())
        return err("negating a state term");
      return MeaningTerm::mkNeg(T.take());
    }
    if (cur().is(TokKind::LParen)) {
      next();
      Expected<MeaningTermPtr> T = parseMeaningTerm(Ps);
      if (!T)
        return T;
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      return T;
    }
    if (cur().isIdent("s")) {
      next();
      return MeaningTerm::mkState();
    }
    if (cur().isIdent("eval") || cur().isIdent("step")) {
      bool IsEval = cur().isIdent("eval");
      next();
      if (auto D = expect(TokKind::LParen, "'('"))
        return *D;
      Expected<MeaningTermPtr> State = parseMeaningTerm(Ps);
      if (!State)
        return State;
      if (!(*State)->isStateSorted())
        return err("the first argument of eval/step must be a state term");
      if (auto D = expect(TokKind::Comma, "','"))
        return *D;
      if (!cur().is(TokKind::Ident) || !isParam(Ps, cur().Text))
        return err("the second argument of eval/step must be a declared "
                   "fact parameter");
      Symbol Param = Symbol::get(cur().Text);
      next();
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      if (IsEval)
        return MeaningTerm::mkEval(State.take(), Param);
      return MeaningTerm::mkStep(State.take(), Param);
    }
    return err("expected a meaning term ('s', eval, step, a number, or a "
               "parenthesized term)");
  }

  Expected<Rule> parseOneRule() {
    if (!cur().isIdent("rule"))
      return err("expected 'rule'");
    next();
    if (!cur().is(TokKind::Ident))
      return err("expected rule name");
    std::string Name(cur().Text);
    next();
    if (auto D = expect(TokKind::LBrace, "'{' before the rule's left-hand side"))
      return *D;
    Expected<StmtPtr> Before = parseStmtList(TokKind::RBrace);
    if (!Before)
      return Before.error();
    if (auto D = expect(TokKind::RBrace, "'}'"))
      return *D;
    if (auto D = expect(TokKind::Arrow, "'=>'"))
      return *D;
    if (auto D = expect(TokKind::LBrace, "'{' before the rule's right-hand side"))
      return *D;
    Expected<StmtPtr> After = parseStmtList(TokKind::RBrace);
    if (!After)
      return After.error();
    if (auto D = expect(TokKind::RBrace, "'}'"))
      return *D;
    SideCondPtr Cond = SideCond::mkTrue();
    if (cur().isIdent("where")) {
      next();
      Expected<SideCondPtr> C = parseSideCond();
      if (!C)
        return C.error();
      Cond = *C;
    }
    if (cur().is(TokKind::Semi))
      next();
    return Rule{std::move(Name), Before.take(), After.take(), Cond};
  }

  Expected<SideCondPtr> parseSideCondTop() {
    Expected<SideCondPtr> C = parseSideCond();
    if (!C)
      return C;
    if (!cur().is(TokKind::Eof))
      return err("trailing input after side condition");
    return C;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t P = Pos + Ahead;
    return P < Toks.size() ? Toks[P] : Toks.back();
  }
  void next() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  Diag err(const std::string &Message) const {
    return Diag(Message, cur().Loc);
  }

  /// Consumes a token of kind \p K or returns a diagnostic mentioning
  /// \p What.
  std::optional<Diag> expect(TokKind K, const std::string &What) {
    if (!cur().is(K))
      return Diag("expected " + What, cur().Loc);
    next();
    return std::nullopt;
  }

  IdentClass classify(std::string_view Name) const {
    if (Mode == ParseMode::Concrete)
      return IdentClass::Concrete;
    char C = Name.empty() ? '\0' : Name[0];
    if (!std::isupper(static_cast<unsigned char>(C)))
      return IdentClass::Concrete;
    if (C == 'S')
      return IdentClass::StmtMeta;
    if (C == 'E')
      return IdentClass::ExprMeta;
    return IdentClass::VarMeta;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expected<ExprPtr> parseExpr() { return parseOr(); }

  Expected<ExprPtr> parseOr() {
    Expected<ExprPtr> L = parseAnd();
    if (!L)
      return L;
    ExprPtr Result = L.take();
    while (cur().is(TokKind::PipePipe)) {
      SourceLoc Loc = cur().Loc;
      next();
      Expected<ExprPtr> R = parseAnd();
      if (!R)
        return R;
      Result = Expr::mkBinary(BinOp::Or, Result, R.take(), Loc);
    }
    return Result;
  }

  Expected<ExprPtr> parseAnd() {
    Expected<ExprPtr> L = parseCompare();
    if (!L)
      return L;
    ExprPtr Result = L.take();
    while (cur().is(TokKind::AmpAmp)) {
      SourceLoc Loc = cur().Loc;
      next();
      Expected<ExprPtr> R = parseCompare();
      if (!R)
        return R;
      Result = Expr::mkBinary(BinOp::And, Result, R.take(), Loc);
    }
    return Result;
  }

  Expected<ExprPtr> parseCompare() {
    Expected<ExprPtr> L = parseAddSub();
    if (!L)
      return L;
    BinOp Op;
    switch (cur().Kind) {
    case TokKind::Lt:   Op = BinOp::Lt; break;
    case TokKind::Le:   Op = BinOp::Le; break;
    case TokKind::Gt:   Op = BinOp::Gt; break;
    case TokKind::Ge:   Op = BinOp::Ge; break;
    case TokKind::EqEq: Op = BinOp::Eq; break;
    case TokKind::Ne:   Op = BinOp::Ne; break;
    default:
      return L;
    }
    SourceLoc Loc = cur().Loc;
    next();
    Expected<ExprPtr> R = parseAddSub();
    if (!R)
      return R;
    return Expr::mkBinary(Op, L.take(), R.take(), Loc);
  }

  Expected<ExprPtr> parseAddSub() {
    Expected<ExprPtr> L = parseMul();
    if (!L)
      return L;
    ExprPtr Result = L.take();
    while (cur().is(TokKind::Plus) || cur().is(TokKind::Minus)) {
      BinOp Op = cur().is(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      SourceLoc Loc = cur().Loc;
      next();
      Expected<ExprPtr> R = parseMul();
      if (!R)
        return R;
      Result = Expr::mkBinary(Op, Result, R.take(), Loc);
    }
    return Result;
  }

  Expected<ExprPtr> parseMul() {
    Expected<ExprPtr> L = parseUnary();
    if (!L)
      return L;
    ExprPtr Result = L.take();
    while (cur().is(TokKind::Star) || cur().is(TokKind::Slash) ||
           cur().is(TokKind::Percent)) {
      BinOp Op = cur().is(TokKind::Star)    ? BinOp::Mul
                 : cur().is(TokKind::Slash) ? BinOp::Div
                                            : BinOp::Mod;
      SourceLoc Loc = cur().Loc;
      next();
      Expected<ExprPtr> R = parseUnary();
      if (!R)
        return R;
      Result = Expr::mkBinary(Op, Result, R.take(), Loc);
    }
    return Result;
  }

  Expected<ExprPtr> parseUnary() {
    SourceLoc Loc = cur().Loc;
    if (cur().is(TokKind::Minus)) {
      next();
      Expected<ExprPtr> E = parseUnary();
      if (!E)
        return E;
      return Expr::mkUnary(UnOp::Neg, E.take(), Loc);
    }
    if (cur().is(TokKind::Bang)) {
      next();
      Expected<ExprPtr> E = parseUnary();
      if (!E)
        return E;
      return Expr::mkUnary(UnOp::Not, E.take(), Loc);
    }
    return parsePrimary();
  }

  Expected<ExprPtr> parsePrimary() {
    SourceLoc Loc = cur().Loc;
    if (cur().is(TokKind::Number)) {
      int64_t V = cur().Number;
      next();
      return Expr::mkInt(V, Loc);
    }
    if (cur().is(TokKind::LParen)) {
      next();
      Expected<ExprPtr> E = parseExpr();
      if (!E)
        return E;
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      return E;
    }
    if (cur().is(TokKind::Ident)) {
      std::string_view Name = cur().Text;
      if (Name == "true") {
        next();
        return Expr::mkInt(1, Loc);
      }
      if (Name == "false") {
        next();
        return Expr::mkInt(0, Loc);
      }
      if (isKeyword(Name))
        return err("unexpected keyword '" + std::string(Name) +
                   "' in expression");
      next();
      IdentClass IC = classify(Name);
      if (IC == IdentClass::StmtMeta)
        return Diag("statement meta-variable '" + std::string(Name) +
                        "' used in expression position",
                    Loc);
      Symbol Sym = Symbol::get(Name);
      // Array read?
      if (cur().is(TokKind::LBracket)) {
        if (IC == IdentClass::ExprMeta)
          return Diag("expression meta-variable '" + std::string(Name) +
                          "' cannot be indexed",
                      Loc);
        next();
        Expected<ExprPtr> Index = parseExpr();
        if (!Index)
          return Index;
        if (auto D = expect(TokKind::RBracket, "']'"))
          return *D;
        return Expr::mkArrayRead(Sym, IC == IdentClass::VarMeta, Index.take(),
                                 Loc);
      }
      switch (IC) {
      case IdentClass::Concrete:
        return Expr::mkVar(Sym, Loc);
      case IdentClass::VarMeta:
        return Expr::mkMetaVar(Sym, Loc);
      case IdentClass::ExprMeta:
        return Expr::mkMetaExpr(Sym, Loc);
      case IdentClass::StmtMeta:
        break;
      }
    }
    return err("expected expression");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Expected<StmtPtr> parseStmtList(TokKind Terminator) {
    SourceLoc Loc = cur().Loc;
    std::vector<StmtPtr> Stmts;
    while (!cur().is(Terminator) && !cur().is(TokKind::Eof)) {
      Expected<StmtPtr> S = parseStmt();
      if (!S)
        return S;
      Stmts.push_back(S.take());
    }
    if (Stmts.size() == 1)
      return Stmts[0];
    return Stmt::mkSeq(std::move(Stmts), Symbol(), Loc);
  }

  Expected<StmtPtr> parseBlock() {
    if (cur().is(TokKind::LBrace)) {
      next();
      Expected<StmtPtr> S = parseStmtList(TokKind::RBrace);
      if (!S)
        return S;
      if (auto D = expect(TokKind::RBrace, "'}'"))
        return *D;
      return S;
    }
    return parseStmt();
  }

  Expected<StmtPtr> parseStmt() {
    // Optional label: IDENT ':' not followed by '='.
    Symbol Label;
    if (cur().is(TokKind::Ident) && !isKeyword(cur().Text) &&
        peek().is(TokKind::Colon)) {
      Label = Symbol::get(cur().Text);
      next(); // ident
      next(); // ':'
    }
    Expected<StmtPtr> S = parseCoreStmt();
    if (!S)
      return S;
    if (Label.empty())
      return S;
    StmtPtr Inner = S.take();
    if (!Inner->label().empty())
      return err("statement already has a label");
    return Stmt::withLabel(Inner, Label);
  }

  Expected<StmtPtr> parseCoreStmt() {
    SourceLoc Loc = cur().Loc;

    // Brace-enclosed block in statement position.
    if (cur().is(TokKind::LBrace)) {
      next();
      Expected<StmtPtr> S = parseStmtList(TokKind::RBrace);
      if (!S)
        return S;
      if (auto D = expect(TokKind::RBrace, "'}'"))
        return *D;
      return S;
    }

    if (cur().isIdent("skip")) {
      next();
      if (auto D = expect(TokKind::Semi, "';'"))
        return *D;
      return Stmt::mkSkip(Symbol(), Loc);
    }

    if (cur().isIdent("assume")) {
      next();
      if (auto D = expect(TokKind::LParen, "'('"))
        return *D;
      Expected<ExprPtr> C = parseExpr();
      if (!C)
        return C.error();
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      if (auto D = expect(TokKind::Semi, "';'"))
        return *D;
      return Stmt::mkAssume(C.take(), Symbol(), Loc);
    }

    if (cur().isIdent("if")) {
      next();
      if (auto D = expect(TokKind::LParen, "'('"))
        return *D;
      Expected<ExprPtr> C = parseExpr();
      if (!C)
        return C.error();
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      Expected<StmtPtr> Then = parseBlock();
      if (!Then)
        return Then;
      StmtPtr Else;
      if (cur().isIdent("else")) {
        next();
        Expected<StmtPtr> E = parseBlock();
        if (!E)
          return E;
        Else = E.take();
      }
      return Stmt::mkIf(C.take(), Then.take(), Else, Symbol(), Loc);
    }

    if (cur().isIdent("while")) {
      next();
      if (auto D = expect(TokKind::LParen, "'('"))
        return *D;
      Expected<ExprPtr> C = parseExpr();
      if (!C)
        return C.error();
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      Expected<StmtPtr> Body = parseBlock();
      if (!Body)
        return Body;
      return Stmt::mkWhile(C.take(), Body.take(), Symbol(), Loc);
    }

    if (cur().isIdent("for"))
      return parseFor(Loc);

    // Statement meta-variable (rule mode): `S0;` or `S1[I+1];`, i.e. an
    // S-classified identifier not followed by ':=' / '+=' / '-='.
    if (cur().is(TokKind::Ident) && classify(cur().Text) == IdentClass::StmtMeta) {
      Expected<StmtPtr> MS = parseMetaStmtRef();
      if (!MS)
        return MS;
      if (auto D = expect(TokKind::Semi, "';'"))
        return *D;
      return MS;
    }

    // Assignment / increment forms.
    if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
      return err("expected statement");
    std::string_view Name = cur().Text;
    IdentClass IC = classify(Name);
    Symbol Sym = Symbol::get(Name);
    next();

    if (cur().is(TokKind::PlusPlus) || cur().is(TokKind::MinusMinus)) {
      BinOp Op = cur().is(TokKind::PlusPlus) ? BinOp::Add : BinOp::Sub;
      next();
      if (auto D = expect(TokKind::Semi, "';'"))
        return *D;
      ExprPtr Var = IC == IdentClass::VarMeta ? Expr::mkMetaVar(Sym, Loc)
                                              : Expr::mkVar(Sym, Loc);
      return Stmt::mkAssign(LValue::scalar(Sym, IC == IdentClass::VarMeta),
                            Expr::mkBinary(Op, Var, Expr::mkInt(1), Loc),
                            Symbol(), Loc);
    }

    LValue Target = LValue::scalar(Sym, IC == IdentClass::VarMeta);
    if (cur().is(TokKind::LBracket)) {
      next();
      Expected<ExprPtr> Index = parseExpr();
      if (!Index)
        return Index.error();
      if (auto D = expect(TokKind::RBracket, "']'"))
        return *D;
      Target = LValue::arrayElem(Sym, Index.take(), IC == IdentClass::VarMeta);
    }

    BinOp CompoundOp = BinOp::Add;
    bool Compound = false;
    if (cur().is(TokKind::Assign)) {
      next();
    } else if (cur().is(TokKind::PlusAssign)) {
      Compound = true;
      CompoundOp = BinOp::Add;
      next();
    } else if (cur().is(TokKind::MinusAssign)) {
      Compound = true;
      CompoundOp = BinOp::Sub;
      next();
    } else {
      return err("expected ':=', '+=', '-=', '++' or '--'");
    }

    Expected<ExprPtr> Value = parseExpr();
    if (!Value)
      return Value.error();
    if (auto D = expect(TokKind::Semi, "';'"))
      return *D;

    ExprPtr Rhs = Value.take();
    if (Compound) {
      ExprPtr Old =
          Target.isArrayElem()
              ? Expr::mkArrayRead(Target.Name, Target.IsMeta, Target.Index, Loc)
          : Target.IsMeta ? Expr::mkMetaVar(Target.Name, Loc)
                          : Expr::mkVar(Target.Name, Loc);
      Rhs = Expr::mkBinary(CompoundOp, Old, Rhs, Loc);
    }
    return Stmt::mkAssign(std::move(Target), std::move(Rhs), Symbol(), Loc);
  }

  /// Parses `S0` or `S1[I+1, J]` into a MetaStmt (no trailing ';').
  Expected<StmtPtr> parseMetaStmtRef() {
    SourceLoc Loc = cur().Loc;
    assert(cur().is(TokKind::Ident));
    Symbol Name = Symbol::get(cur().Text);
    next();
    std::vector<ExprPtr> Holes;
    if (cur().is(TokKind::LBracket)) {
      next();
      while (true) {
        Expected<ExprPtr> H = parseExpr();
        if (!H)
          return H.error();
        Holes.push_back(H.take());
        if (cur().is(TokKind::Comma)) {
          next();
          continue;
        }
        break;
      }
      if (auto D = expect(TokKind::RBracket, "']'"))
        return *D;
    }
    return Stmt::mkMetaStmt(Name, std::move(Holes), Symbol(), Loc);
  }

  Expected<StmtPtr> parseFor(SourceLoc Loc) {
    next(); // 'for'
    if (auto D = expect(TokKind::LParen, "'('"))
      return *D;
    if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
      return err("expected loop index variable");
    std::string_view IdxName = cur().Text;
    IdentClass IC = classify(IdxName);
    if (IC == IdentClass::StmtMeta || IC == IdentClass::ExprMeta)
      return err("loop index must be a variable");
    Symbol Idx = Symbol::get(IdxName);
    next();
    if (auto D = expect(TokKind::Assign, "':='"))
      return *D;
    Expected<ExprPtr> Init = parseExpr();
    if (!Init)
      return Init.error();
    if (auto D = expect(TokKind::Semi, "';'"))
      return *D;
    Expected<ExprPtr> Cond = parseExpr();
    if (!Cond)
      return Cond.error();
    if (auto D = expect(TokKind::Semi, "';'"))
      return *D;
    if (!cur().is(TokKind::Ident) || Symbol::get(cur().Text) != Idx)
      return err("for-loop step must update the index variable");
    next();
    int64_t Step;
    if (cur().is(TokKind::PlusPlus))
      Step = 1;
    else if (cur().is(TokKind::MinusMinus))
      Step = -1;
    else
      return err("expected '++' or '--' in for-loop step");
    next();
    if (auto D = expect(TokKind::RParen, "')'"))
      return *D;
    Expected<StmtPtr> Body = parseBlock();
    if (!Body)
      return Body;
    return Stmt::mkFor(Idx, IC == IdentClass::VarMeta, Init.take(),
                       Cond.take(), Step, Body.take(), Symbol(), Loc);
  }

  //===--------------------------------------------------------------------===//
  // Side conditions
  //===--------------------------------------------------------------------===//

  Expected<SideCondPtr> parseSideCond() { return parseCondOr(); }

  Expected<SideCondPtr> parseCondOr() {
    Expected<SideCondPtr> L = parseCondAnd();
    if (!L)
      return L;
    std::vector<SideCondPtr> Cs;
    Cs.push_back(L.take());
    while (cur().is(TokKind::PipePipe)) {
      next();
      Expected<SideCondPtr> R = parseCondAnd();
      if (!R)
        return R;
      Cs.push_back(R.take());
    }
    return SideCond::mkOr(std::move(Cs));
  }

  Expected<SideCondPtr> parseCondAnd() {
    Expected<SideCondPtr> L = parseCondPrim();
    if (!L)
      return L;
    std::vector<SideCondPtr> Cs;
    Cs.push_back(L.take());
    while (cur().is(TokKind::AmpAmp)) {
      next();
      Expected<SideCondPtr> R = parseCondPrim();
      if (!R)
        return R;
      Cs.push_back(R.take());
    }
    return SideCond::mkAnd(std::move(Cs));
  }

  Expected<SideCondPtr> parseCondPrim() {
    if (cur().is(TokKind::Bang)) {
      next();
      Expected<SideCondPtr> C = parseCondPrim();
      if (!C)
        return C;
      return SideCond::mkNot(C.take());
    }
    if (cur().is(TokKind::LParen)) {
      next();
      Expected<SideCondPtr> C = parseSideCond();
      if (!C)
        return C;
      if (auto D = expect(TokKind::RParen, "')'"))
        return *D;
      return C;
    }
    if (cur().isIdent("true")) {
      next();
      return SideCond::mkTrue();
    }
    if (cur().isIdent("forall")) {
      next();
      std::vector<Symbol> Bound;
      while (true) {
        if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
          return err("expected bound variable after 'forall'");
        if (classify(cur().Text) != IdentClass::VarMeta)
          return err("forall-bound names must be variable meta-variables");
        Bound.push_back(Symbol::get(cur().Text));
        next();
        if (cur().is(TokKind::Comma)) {
          next();
          continue;
        }
        break;
      }
      if (auto D = expect(TokKind::Dot, "'.' after forall binders"))
        return *D;
      Expected<SideCondPtr> C = parseCondPrim();
      if (!C)
        return C;
      return SideCond::mkForall(std::move(Bound), C.take());
    }
    return parseFactAtom();
  }

  Expected<SideCondPtr> parseFactAtom() {
    if (!cur().is(TokKind::Ident) || isKeyword(cur().Text))
      return err("expected fact name");
    Symbol FactName = Symbol::get(cur().Text);
    next();
    if (auto D = expect(TokKind::LParen, "'(' after fact name"))
      return *D;
    std::vector<FactArg> Args;
    if (!cur().is(TokKind::RParen)) {
      while (true) {
        Expected<FactArg> A = parseFactArg();
        if (!A)
          return A.error();
        Args.push_back(A.take());
        if (cur().is(TokKind::Comma)) {
          next();
          continue;
        }
        break;
      }
    }
    if (auto D = expect(TokKind::RParen, "')'"))
      return *D;
    if (auto D = expect(TokKind::At, "'@' and a label after the fact"))
      return *D;
    if (!cur().is(TokKind::Ident))
      return err("expected label after '@'");
    Symbol Label = Symbol::get(cur().Text);
    next();
    return SideCond::mkAtom(FactName, std::move(Args), Label);
  }

  Expected<FactArg> parseFactArg() {
    // Statement meta-variable reference (possibly with holes)?
    if (cur().is(TokKind::Ident) &&
        classify(cur().Text) == IdentClass::StmtMeta) {
      Expected<StmtPtr> S = parseMetaStmtRef();
      if (!S)
        return S.error();
      return FactArg::stmt(S.take());
    }
    Expected<ExprPtr> E = parseExpr();
    if (!E)
      return E.error();
    return FactArg::expr(E.take());
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  ParseMode Mode;
};

} // namespace

Expected<StmtPtr> pec::parseProgram(std::string_view Source, ParseMode Mode) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), Mode).parseProgramTop();
}

Expected<ExprPtr> pec::parseExpr(std::string_view Source, ParseMode Mode) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), Mode).parseExprTop();
}

Expected<Rule> pec::parseRule(std::string_view Source) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), ParseMode::Parameterized).parseRuleTop();
}

Expected<std::vector<Rule>> pec::parseRules(std::string_view Source) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), ParseMode::Parameterized).parseRulesTop();
}

Expected<RuleFile> pec::parseRuleFile(std::string_view Source) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), ParseMode::Parameterized)
      .parseRuleFileTop();
}

Expected<FactDecl> pec::parseFactDecl(std::string_view Source) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), ParseMode::Parameterized)
      .parseFactDeclTop();
}

Expected<SideCondPtr> pec::parseSideCond(std::string_view Source) {
  Expected<std::vector<Token>> Toks = tokenize(Source);
  if (!Toks)
    return Toks.error();
  return ParserImpl(Toks.take(), ParseMode::Parameterized).parseSideCondTop();
}
