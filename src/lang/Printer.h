//===- Printer.h - Pretty printer for the PEC language ----------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printing of expressions, statements, side conditions, and rules.
/// Output round-trips through the parser.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_PRINTER_H
#define PEC_LANG_PRINTER_H

#include "lang/Ast.h"
#include "lang/Meaning.h"
#include "lang/Rule.h"

#include <string>

namespace pec {

std::string printExpr(const ExprPtr &E);
std::string printStmt(const StmtPtr &S, unsigned Indent = 0);
std::string printSideCond(const SideCondPtr &C);
std::string printRule(const Rule &R);
std::string printMeaningTerm(const MeaningTermPtr &T);
std::string printMeaningForm(const MeaningFormPtr &F);
std::string printFactDecl(const FactDecl &D);

} // namespace pec

#endif // PEC_LANG_PRINTER_H
