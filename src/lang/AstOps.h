//===- AstOps.h - Structural operations on the AST --------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural equality, variable collection, read/write sets for concrete
/// statements, `for`-loop lowering, and meta-variable enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_ASTOPS_H
#define PEC_LANG_ASTOPS_H

#include "lang/Ast.h"

#include <functional>
#include <set>
#include <vector>

namespace pec {

/// Structural equality, ignoring labels and source locations.
bool exprEquals(const ExprPtr &A, const ExprPtr &B);
/// Structural equality, ignoring labels and source locations. Empty `Seq`s
/// and nested `Seq` flattening are NOT normalized here; use
/// \ref normalizeStmt first if needed.
bool stmtEquals(const StmtPtr &A, const StmtPtr &B);

/// Flattens nested Seqs, drops Skips inside Seqs (unless the Seq would become
/// empty), and recursively normalizes children. Labels on dropped nodes are
/// preserved by re-attaching them where possible; labels on pruned Skips are
/// lost.
StmtPtr normalizeStmt(const StmtPtr &S);

/// Collects the names of all concrete variables (scalars and arrays) that
/// occur in \p E / \p S.
void collectVars(const ExprPtr &E, std::set<Symbol> &Out);
void collectVars(const StmtPtr &S, std::set<Symbol> &Out);

/// Meta-variable occurrence sets.
struct MetaVars {
  std::set<Symbol> StmtVars; ///< Statement meta-variables.
  std::set<Symbol> ExprVars; ///< Expression meta-variables.
  std::set<Symbol> VarVars;  ///< Variable meta-variables.
};
void collectMetaVars(const ExprPtr &E, MetaVars &Out);
void collectMetaVars(const StmtPtr &S, MetaVars &Out);

/// Read/write sets for *concrete* programs (used by the execution engine's
/// conservative side-condition checks, paper Sec. 8). Array accesses
/// contribute the array name; indices contribute their reads. Asserts if the
/// statement is parameterized.
void readSet(const ExprPtr &E, std::set<Symbol> &Out);
void readSet(const StmtPtr &S, std::set<Symbol> &Out);
void writeSet(const StmtPtr &S, std::set<Symbol> &Out);

/// Lowers every `for` into init + `while` (the canonical desugaring used by
/// the CFG builder and the interpreter):
/// `for (i := lo; c; i++) b`  =>  `i := lo; while (c) { b; i := i + 1; }`.
StmtPtr lowerFors(const StmtPtr &S);

/// Calls \p Fn for every statement node in pre-order (including \p S).
void forEachStmt(const StmtPtr &S,
                 const std::function<void(const StmtPtr &)> &Fn);

/// Finds the (unique) statement labeled \p Label, or null.
StmtPtr findLabeled(const StmtPtr &S, Symbol Label);

} // namespace pec

#endif // PEC_LANG_ASTOPS_H
