//===- Rule.h - Parameterized rewrite rules and side conditions -*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of optimizations written in the paper's rule language:
///
///   rule <name> { <before> } => { <after> }
///     where <side-condition> ;
///
/// A side condition is a boolean combination of *facts at labels*
/// (`DoesNotModify(S0, I) @ L1`), possibly under a universal quantifier over
/// fresh variable meta-variables (paper Fig. 10). Fact arguments are
/// expressions or references to statement meta-variables (with hole
/// arguments). The *semantic meanings* of facts live in `pec/Facts.h`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LANG_RULE_H
#define PEC_LANG_RULE_H

#include "lang/Ast.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pec {

/// An argument of a fact: either an expression or a statement meta-variable
/// reference (exactly one of the two pointers is non-null).
struct FactArg {
  ExprPtr E;
  StmtPtr S; ///< Always a MetaStmt when non-null.

  bool isExpr() const { return E != nullptr; }
  bool isStmt() const { return S != nullptr; }

  static FactArg expr(ExprPtr Expr) { return FactArg{std::move(Expr), nullptr}; }
  static FactArg stmt(StmtPtr MetaStmt) {
    return FactArg{nullptr, std::move(MetaStmt)};
  }
};

class SideCond;
using SideCondPtr = std::shared_ptr<const SideCond>;

enum class SideCondKind : uint8_t {
  True,   ///< Trivially satisfied (no side condition).
  Atom,   ///< fact(args...) @ label
  And,
  Or,
  Not,
  Forall, ///< forall I, J . cond — bound names are variable meta-variables.
};

/// A side-condition formula.
class SideCond {
public:
  SideCondKind kind() const { return Kind; }

  // Atom
  Symbol factName() const {
    assert(Kind == SideCondKind::Atom);
    return FactName;
  }
  const std::vector<FactArg> &args() const {
    assert(Kind == SideCondKind::Atom);
    return Args;
  }
  Symbol atLabel() const {
    assert(Kind == SideCondKind::Atom);
    return AtLabel;
  }

  // And / Or / Not / Forall
  const std::vector<SideCondPtr> &children() const { return Children; }

  // Forall
  const std::vector<Symbol> &boundVars() const {
    assert(Kind == SideCondKind::Forall);
    return Bound;
  }

  static SideCondPtr mkTrue();
  static SideCondPtr mkAtom(Symbol FactName, std::vector<FactArg> Args,
                            Symbol AtLabel);
  static SideCondPtr mkAnd(std::vector<SideCondPtr> Cs);
  static SideCondPtr mkOr(std::vector<SideCondPtr> Cs);
  static SideCondPtr mkNot(SideCondPtr C);
  static SideCondPtr mkForall(std::vector<Symbol> Bound, SideCondPtr C);

  /// Calls \p Fn on every Atom in this condition (including under
  /// quantifiers).
  void forEachAtom(const std::function<void(const SideCond &)> &Fn) const;

private:
  SideCond() = default;

  SideCondKind Kind = SideCondKind::True;
  Symbol FactName;
  std::vector<FactArg> Args;
  Symbol AtLabel;
  std::vector<SideCondPtr> Children;
  std::vector<Symbol> Bound;
};

/// A parameterized rewrite rule `Before => After where Cond`.
struct Rule {
  std::string Name;
  StmtPtr Before;
  StmtPtr After;
  SideCondPtr Cond;
};

} // namespace pec

#endif // PEC_LANG_RULE_H
