//===- AstOps.cpp - Structural operations on the AST -----------------------===//

#include "lang/AstOps.h"

#include <cstdlib>

using namespace pec;

bool pec::exprEquals(const ExprPtr &A, const ExprPtr &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::IntLit:
    return A->intValue() == B->intValue();
  case ExprKind::Var:
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    return A->name() == B->name();
  case ExprKind::ArrayRead:
    return A->name() == B->name() && A->arrayIsMeta() == B->arrayIsMeta() &&
           exprEquals(A->index(), B->index());
  case ExprKind::Binary:
    return A->binOp() == B->binOp() && exprEquals(A->lhs(), B->lhs()) &&
           exprEquals(A->rhs(), B->rhs());
  case ExprKind::Unary:
    return A->unOp() == B->unOp() && exprEquals(A->lhs(), B->lhs());
  }
  return false;
}

static bool lvalueEquals(const LValue &A, const LValue &B) {
  return A.Name == B.Name && A.IsMeta == B.IsMeta &&
         ((A.Index == nullptr) == (B.Index == nullptr)) &&
         (!A.Index || exprEquals(A.Index, B.Index));
}

bool pec::stmtEquals(const StmtPtr &A, const StmtPtr &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case StmtKind::Skip:
    return true;
  case StmtKind::Assign:
    return lvalueEquals(A->target(), B->target()) &&
           exprEquals(A->value(), B->value());
  case StmtKind::Seq: {
    const auto &As = A->stmts(), &Bs = B->stmts();
    if (As.size() != Bs.size())
      return false;
    for (size_t I = 0; I < As.size(); ++I)
      if (!stmtEquals(As[I], Bs[I]))
        return false;
    return true;
  }
  case StmtKind::If: {
    if (!exprEquals(A->cond(), B->cond()) ||
        !stmtEquals(A->thenStmt(), B->thenStmt()))
      return false;
    if ((A->elseStmt() == nullptr) != (B->elseStmt() == nullptr))
      return false;
    return !A->elseStmt() || stmtEquals(A->elseStmt(), B->elseStmt());
  }
  case StmtKind::While:
    return exprEquals(A->cond(), B->cond()) && stmtEquals(A->body(), B->body());
  case StmtKind::For:
    return A->indexVar() == B->indexVar() &&
           A->indexIsMeta() == B->indexIsMeta() &&
           exprEquals(A->init(), B->init()) &&
           exprEquals(A->cond(), B->cond()) &&
           A->stepDelta() == B->stepDelta() &&
           stmtEquals(A->body(), B->body());
  case StmtKind::Assume:
    return exprEquals(A->cond(), B->cond());
  case StmtKind::MetaStmt: {
    if (A->metaName() != B->metaName() ||
        A->holeArgs().size() != B->holeArgs().size())
      return false;
    for (size_t I = 0; I < A->holeArgs().size(); ++I)
      if (!exprEquals(A->holeArgs()[I], B->holeArgs()[I]))
        return false;
    return true;
  }
  }
  return false;
}

StmtPtr pec::normalizeStmt(const StmtPtr &S) {
  switch (S->kind()) {
  case StmtKind::Skip:
  case StmtKind::Assign:
  case StmtKind::Assume:
  case StmtKind::MetaStmt:
    return S;
  case StmtKind::Seq: {
    std::vector<StmtPtr> Flat;
    for (const StmtPtr &C : S->stmts()) {
      StmtPtr N = normalizeStmt(C);
      if (N->kind() == StmtKind::Seq && N->label().empty()) {
        for (const StmtPtr &G : N->stmts())
          Flat.push_back(G);
      } else if (N->kind() == StmtKind::Skip && N->label().empty()) {
        // Drop unlabeled skips inside sequences.
      } else {
        Flat.push_back(N);
      }
    }
    if (Flat.empty())
      return Stmt::mkSkip(S->label(), S->location());
    if (Flat.size() == 1 && S->label().empty())
      return Flat[0];
    return Stmt::mkSeq(std::move(Flat), S->label(), S->location());
  }
  case StmtKind::If: {
    StmtPtr Else = S->elseStmt() ? normalizeStmt(S->elseStmt()) : nullptr;
    return Stmt::mkIf(S->cond(), normalizeStmt(S->thenStmt()), Else,
                      S->label(), S->location());
  }
  case StmtKind::While:
    return Stmt::mkWhile(S->cond(), normalizeStmt(S->body()), S->label(),
                         S->location());
  case StmtKind::For:
    return Stmt::mkFor(S->indexVar(), S->indexIsMeta(), S->init(), S->cond(),
                       S->stepDelta(), normalizeStmt(S->body()), S->label(),
                       S->location());
  }
  return S;
}

void pec::collectVars(const ExprPtr &E, std::set<Symbol> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::MetaExpr:
    return;
  case ExprKind::Var:
    Out.insert(E->name());
    return;
  case ExprKind::MetaVar:
    return;
  case ExprKind::ArrayRead:
    if (!E->arrayIsMeta())
      Out.insert(E->name());
    collectVars(E->index(), Out);
    return;
  case ExprKind::Binary:
    collectVars(E->lhs(), Out);
    collectVars(E->rhs(), Out);
    return;
  case ExprKind::Unary:
    collectVars(E->lhs(), Out);
    return;
  }
}

void pec::collectVars(const StmtPtr &S, std::set<Symbol> &Out) {
  forEachStmt(S, [&Out](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      if (!N->target().IsMeta)
        Out.insert(N->target().Name);
      if (N->target().Index)
        collectVars(N->target().Index, Out);
      collectVars(N->value(), Out);
      break;
    case StmtKind::Assume:
      collectVars(N->cond(), Out);
      break;
    case StmtKind::If:
    case StmtKind::While:
      collectVars(N->cond(), Out);
      break;
    case StmtKind::For:
      if (!N->indexIsMeta())
        Out.insert(N->indexVar());
      collectVars(N->init(), Out);
      collectVars(N->cond(), Out);
      break;
    case StmtKind::MetaStmt:
      for (const ExprPtr &H : N->holeArgs())
        collectVars(H, Out);
      break;
    case StmtKind::Skip:
    case StmtKind::Seq:
      break;
    }
  });
}

void pec::collectMetaVars(const ExprPtr &E, MetaVars &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::Var:
    return;
  case ExprKind::MetaVar:
    Out.VarVars.insert(E->name());
    return;
  case ExprKind::MetaExpr:
    Out.ExprVars.insert(E->name());
    return;
  case ExprKind::ArrayRead:
    if (E->arrayIsMeta())
      Out.VarVars.insert(E->name());
    collectMetaVars(E->index(), Out);
    return;
  case ExprKind::Binary:
    collectMetaVars(E->lhs(), Out);
    collectMetaVars(E->rhs(), Out);
    return;
  case ExprKind::Unary:
    collectMetaVars(E->lhs(), Out);
    return;
  }
}

void pec::collectMetaVars(const StmtPtr &S, MetaVars &Out) {
  forEachStmt(S, [&Out](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      if (N->target().IsMeta)
        Out.VarVars.insert(N->target().Name);
      if (N->target().Index)
        collectMetaVars(N->target().Index, Out);
      collectMetaVars(N->value(), Out);
      break;
    case StmtKind::Assume:
    case StmtKind::If:
    case StmtKind::While:
      collectMetaVars(N->cond(), Out);
      break;
    case StmtKind::For:
      if (N->indexIsMeta())
        Out.VarVars.insert(N->indexVar());
      collectMetaVars(N->init(), Out);
      collectMetaVars(N->cond(), Out);
      break;
    case StmtKind::MetaStmt:
      Out.StmtVars.insert(N->metaName());
      for (const ExprPtr &H : N->holeArgs())
        collectMetaVars(H, Out);
      break;
    case StmtKind::Skip:
    case StmtKind::Seq:
      break;
    }
  });
}

void pec::readSet(const ExprPtr &E, std::set<Symbol> &Out) {
  assert(!E->isParameterized() && "read set requires a concrete expression");
  collectVars(E, Out);
}

void pec::readSet(const StmtPtr &S, std::set<Symbol> &Out) {
  forEachStmt(S, [&Out](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      // The index of an array write is a read; the element is a write but
      // reading other elements of the same array is conservatively counted
      // as a read only through explicit ArrayReads.
      if (N->target().Index)
        readSet(N->target().Index, Out);
      readSet(N->value(), Out);
      break;
    case StmtKind::Assume:
    case StmtKind::If:
    case StmtKind::While:
      readSet(N->cond(), Out);
      break;
    case StmtKind::For:
      readSet(N->init(), Out);
      readSet(N->cond(), Out);
      Out.insert(N->indexVar());
      break;
    case StmtKind::MetaStmt:
      reportFatalError("read set requested for a parameterized statement");
    case StmtKind::Skip:
    case StmtKind::Seq:
      break;
    }
  });
}

void pec::writeSet(const StmtPtr &S, std::set<Symbol> &Out) {
  forEachStmt(S, [&Out](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      assert(!N->target().IsMeta && "write set requires a concrete statement");
      Out.insert(N->target().Name);
      break;
    case StmtKind::For:
      Out.insert(N->indexVar());
      break;
    case StmtKind::MetaStmt:
      reportFatalError("write set requested for a parameterized statement");
    default:
      break;
    }
  });
}

StmtPtr pec::lowerFors(const StmtPtr &S) {
  switch (S->kind()) {
  case StmtKind::Skip:
  case StmtKind::Assign:
  case StmtKind::Assume:
  case StmtKind::MetaStmt:
    return S;
  case StmtKind::Seq: {
    std::vector<StmtPtr> Out;
    Out.reserve(S->stmts().size());
    for (const StmtPtr &C : S->stmts())
      Out.push_back(lowerFors(C));
    return Stmt::mkSeq(std::move(Out), S->label(), S->location());
  }
  case StmtKind::If:
    return Stmt::mkIf(S->cond(), lowerFors(S->thenStmt()),
                      S->elseStmt() ? lowerFors(S->elseStmt()) : nullptr,
                      S->label(), S->location());
  case StmtKind::While:
    return Stmt::mkWhile(S->cond(), lowerFors(S->body()), S->label(),
                         S->location());
  case StmtKind::For: {
    Symbol Idx = S->indexVar();
    bool Meta = S->indexIsMeta();
    ExprPtr IdxRef = Meta ? Expr::mkMetaVar(Idx) : Expr::mkVar(Idx);
    StmtPtr Init = Stmt::mkAssign(LValue::scalar(Idx, Meta), S->init());
    StmtPtr Step = Stmt::mkAssign(
        LValue::scalar(Idx, Meta),
        Expr::mkBinary(S->stepDelta() >= 0 ? BinOp::Add : BinOp::Sub, IdxRef,
                       Expr::mkInt(std::abs(S->stepDelta()))));
    StmtPtr Body =
        Stmt::mkSeq({lowerFors(S->body()), Step});
    StmtPtr Loop = Stmt::mkWhile(S->cond(), Body, S->label(), S->location());
    return Stmt::mkSeq({Init, Loop});
  }
  }
  return S;
}

void pec::forEachStmt(const StmtPtr &S,
                      const std::function<void(const StmtPtr &)> &Fn) {
  Fn(S);
  switch (S->kind()) {
  case StmtKind::Seq:
    for (const StmtPtr &C : S->stmts())
      forEachStmt(C, Fn);
    break;
  case StmtKind::If:
    forEachStmt(S->thenStmt(), Fn);
    if (S->elseStmt())
      forEachStmt(S->elseStmt(), Fn);
    break;
  case StmtKind::While:
  case StmtKind::For:
    forEachStmt(S->body(), Fn);
    break;
  default:
    break;
  }
}

StmtPtr pec::findLabeled(const StmtPtr &S, Symbol Label) {
  StmtPtr Found;
  forEachStmt(S, [&](const StmtPtr &N) {
    if (N->label() == Label && !Found)
      Found = N;
  });
  return Found;
}
