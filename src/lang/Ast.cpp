//===- Ast.cpp - AST factories and small queries --------------------------===//

#include "lang/Ast.h"

using namespace pec;

const char *pec::spelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::Div: return "/";
  case BinOp::Mod: return "%";
  case BinOp::Lt:  return "<";
  case BinOp::Le:  return "<=";
  case BinOp::Gt:  return ">";
  case BinOp::Ge:  return ">=";
  case BinOp::Eq:  return "==";
  case BinOp::Ne:  return "!=";
  case BinOp::And: return "&&";
  case BinOp::Or:  return "||";
  }
  return "?";
}

const char *pec::spelling(UnOp Op) {
  switch (Op) {
  case UnOp::Neg: return "-";
  case UnOp::Not: return "!";
  }
  return "?";
}

bool pec::isBooleanOp(BinOp Op) {
  switch (Op) {
  case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
  case BinOp::Eq: case BinOp::Ne: case BinOp::And: case BinOp::Or:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

bool Expr::isParameterized() const {
  switch (Kind) {
  case ExprKind::IntLit:
  case ExprKind::Var:
    return false;
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    return true;
  case ExprKind::ArrayRead:
    return ArrayMeta || Lhs->isParameterized();
  case ExprKind::Binary:
    return Lhs->isParameterized() || Rhs->isParameterized();
  case ExprKind::Unary:
    return Lhs->isParameterized();
  }
  return false;
}

ExprPtr Expr::mkInt(int64_t V, SourceLoc Loc) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::IntLit;
  E->IntValue = V;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkVar(Symbol Name, SourceLoc Loc) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Var;
  E->Name = Name;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkMetaVar(Symbol Name, SourceLoc Loc) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::MetaVar;
  E->Name = Name;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkMetaExpr(Symbol Name, SourceLoc Loc) {
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::MetaExpr;
  E->Name = Name;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkArrayRead(Symbol Array, bool ArrayMeta, ExprPtr Index,
                          SourceLoc Loc) {
  assert(Index && "array read needs an index");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::ArrayRead;
  E->Name = Array;
  E->ArrayMeta = ArrayMeta;
  E->Lhs = std::move(Index);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkBinary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc) {
  assert(L && R && "binary expression needs both operands");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::mkUnary(UnOp Op, ExprPtr Operand, SourceLoc Loc) {
  assert(Operand && "unary expression needs an operand");
  auto E = std::shared_ptr<Expr>(new Expr());
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Lhs = std::move(Operand);
  E->Loc = Loc;
  return E;
}

//===----------------------------------------------------------------------===//
// Stmt
//===----------------------------------------------------------------------===//

bool Stmt::isParameterized() const {
  switch (Kind) {
  case StmtKind::Skip:
    return false;
  case StmtKind::MetaStmt:
    return true;
  case StmtKind::Assign:
    if (Target.IsMeta || (Target.Index && Target.Index->isParameterized()))
      return true;
    return Value->isParameterized();
  case StmtKind::Assume:
    return Value->isParameterized();
  case StmtKind::Seq:
    for (const StmtPtr &S : Children)
      if (S->isParameterized())
        return true;
    return false;
  case StmtKind::If:
    if (Value->isParameterized() || Children[0]->isParameterized())
      return true;
    return Children[1] && Children[1]->isParameterized();
  case StmtKind::While:
    return Value->isParameterized() || Children[0]->isParameterized();
  case StmtKind::For:
    return NameMeta || Init->isParameterized() || Value->isParameterized() ||
           Children[0]->isParameterized();
  }
  return false;
}

StmtPtr Stmt::mkSkip(Symbol Label, SourceLoc Loc) {
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Skip;
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkAssign(LValue Target, ExprPtr Value, Symbol Label,
                       SourceLoc Loc) {
  assert(Value && "assignment needs a value");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Assign;
  S->Target = std::move(Target);
  S->Value = std::move(Value);
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkSeq(std::vector<StmtPtr> Stmts, Symbol Label, SourceLoc Loc) {
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Seq;
  S->Children = std::move(Stmts);
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkIf(ExprPtr Cond, StmtPtr Then, StmtPtr Else, Symbol Label,
                   SourceLoc Loc) {
  assert(Cond && Then && "if needs a condition and a then-branch");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::If;
  S->Value = std::move(Cond);
  S->Children.push_back(std::move(Then));
  S->Children.push_back(std::move(Else)); // May be null.
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkWhile(ExprPtr Cond, StmtPtr Body, Symbol Label,
                      SourceLoc Loc) {
  assert(Cond && Body && "while needs a condition and a body");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::While;
  S->Value = std::move(Cond);
  S->Children.push_back(std::move(Body));
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkFor(Symbol IndexVar, bool IndexIsMeta, ExprPtr Init,
                    ExprPtr Cond, int64_t StepDelta, StmtPtr Body,
                    Symbol Label, SourceLoc Loc) {
  assert(Init && Cond && Body && "for needs init, cond and body");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::For;
  S->Name = IndexVar;
  S->NameMeta = IndexIsMeta;
  S->Init = std::move(Init);
  S->Value = std::move(Cond);
  S->StepDelta = StepDelta;
  S->Children.push_back(std::move(Body));
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkAssume(ExprPtr Cond, Symbol Label, SourceLoc Loc) {
  assert(Cond && "assume needs a condition");
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::Assume;
  S->Value = std::move(Cond);
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::mkMetaStmt(Symbol Name, std::vector<ExprPtr> Holes, Symbol Label,
                         SourceLoc Loc) {
  auto S = std::shared_ptr<Stmt>(new Stmt());
  S->Kind = StmtKind::MetaStmt;
  S->Name = Name;
  S->Holes = std::move(Holes);
  S->Label = Label;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::withLabel(const StmtPtr &Orig, Symbol NewLabel) {
  auto S = std::shared_ptr<Stmt>(new Stmt(*Orig));
  S->Label = NewLabel;
  return S;
}
