//===- Printer.cpp - Pretty printer -----------------------------------------===//

#include "lang/Printer.h"

#include <sstream>

using namespace pec;

namespace {

/// Precedence levels, higher binds tighter.
int precedence(BinOp Op) {
  switch (Op) {
  case BinOp::Or:  return 1;
  case BinOp::And: return 2;
  case BinOp::Lt: case BinOp::Le: case BinOp::Gt:
  case BinOp::Ge: case BinOp::Eq: case BinOp::Ne:
    return 3;
  case BinOp::Add: case BinOp::Sub:
    return 4;
  case BinOp::Mul: case BinOp::Div: case BinOp::Mod:
    return 5;
  }
  return 0;
}

void printExprInto(const ExprPtr &E, std::ostringstream &OS, int ParentPrec) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    OS << E->intValue();
    return;
  case ExprKind::Var:
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    OS << E->name().str();
    return;
  case ExprKind::ArrayRead:
    OS << E->name().str() << '[';
    printExprInto(E->index(), OS, 0);
    OS << ']';
    return;
  case ExprKind::Binary: {
    int Prec = precedence(E->binOp());
    bool Paren = Prec < ParentPrec;
    if (Paren)
      OS << '(';
    printExprInto(E->lhs(), OS, Prec);
    OS << ' ' << spelling(E->binOp()) << ' ';
    printExprInto(E->rhs(), OS, Prec + 1);
    if (Paren)
      OS << ')';
    return;
  }
  case ExprKind::Unary:
    OS << spelling(E->unOp());
    printExprInto(E->lhs(), OS, 6);
    return;
  }
}

void indentTo(std::ostringstream &OS, unsigned Indent) {
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
}

void printStmtInto(const StmtPtr &S, std::ostringstream &OS, unsigned Indent);

void printBlock(const StmtPtr &S, std::ostringstream &OS, unsigned Indent) {
  OS << "{\n";
  if (S->kind() == StmtKind::Seq && S->label().empty()) {
    for (const StmtPtr &C : S->stmts())
      printStmtInto(C, OS, Indent + 1);
  } else {
    printStmtInto(S, OS, Indent + 1);
  }
  indentTo(OS, Indent);
  OS << "}";
}

void printStmtInto(const StmtPtr &S, std::ostringstream &OS, unsigned Indent) {
  indentTo(OS, Indent);
  if (!S->label().empty())
    OS << S->label().str() << ": ";
  switch (S->kind()) {
  case StmtKind::Skip:
    OS << "skip;\n";
    return;
  case StmtKind::Assign: {
    const LValue &T = S->target();
    OS << T.Name.str();
    if (T.Index) {
      OS << '[';
      printExprInto(T.Index, OS, 0);
      OS << ']';
    }
    OS << " := ";
    printExprInto(S->value(), OS, 0);
    OS << ";\n";
    return;
  }
  case StmtKind::Seq:
    // A labeled/bare Seq in statement position prints as a block.
    printBlock(S, OS, Indent);
    OS << "\n";
    return;
  case StmtKind::If:
    OS << "if (";
    printExprInto(S->cond(), OS, 0);
    OS << ") ";
    printBlock(S->thenStmt(), OS, Indent);
    if (S->elseStmt()) {
      OS << " else ";
      printBlock(S->elseStmt(), OS, Indent);
    }
    OS << "\n";
    return;
  case StmtKind::While:
    OS << "while (";
    printExprInto(S->cond(), OS, 0);
    OS << ") ";
    printBlock(S->body(), OS, Indent);
    OS << "\n";
    return;
  case StmtKind::For:
    OS << "for (" << S->indexVar().str() << " := ";
    printExprInto(S->init(), OS, 0);
    OS << "; ";
    printExprInto(S->cond(), OS, 0);
    OS << "; " << S->indexVar().str()
       << (S->stepDelta() >= 0 ? "++" : "--") << ") ";
    printBlock(S->body(), OS, Indent);
    OS << "\n";
    return;
  case StmtKind::Assume:
    OS << "assume(";
    printExprInto(S->cond(), OS, 0);
    OS << ");\n";
    return;
  case StmtKind::MetaStmt:
    OS << S->metaName().str();
    if (!S->holeArgs().empty()) {
      OS << '[';
      bool First = true;
      for (const ExprPtr &H : S->holeArgs()) {
        if (!First)
          OS << ", ";
        First = false;
        printExprInto(H, OS, 0);
      }
      OS << ']';
    }
    OS << ";\n";
    return;
  }
}

void printSideCondInto(const SideCondPtr &C, std::ostringstream &OS) {
  switch (C->kind()) {
  case SideCondKind::True:
    OS << "true";
    return;
  case SideCondKind::Atom: {
    OS << C->factName().str() << '(';
    bool First = true;
    for (const FactArg &A : C->args()) {
      if (!First)
        OS << ", ";
      First = false;
      if (A.isExpr()) {
        printExprInto(A.E, OS, 0);
      } else {
        OS << A.S->metaName().str();
        if (!A.S->holeArgs().empty()) {
          OS << '[';
          bool FirstHole = true;
          for (const ExprPtr &H : A.S->holeArgs()) {
            if (!FirstHole)
              OS << ", ";
            FirstHole = false;
            printExprInto(H, OS, 0);
          }
          OS << ']';
        }
      }
    }
    OS << ") @ " << C->atLabel().str();
    return;
  }
  case SideCondKind::And: {
    bool First = true;
    for (const SideCondPtr &Child : C->children()) {
      if (!First)
        OS << " && ";
      First = false;
      bool Paren = Child->kind() == SideCondKind::Or;
      if (Paren)
        OS << '(';
      printSideCondInto(Child, OS);
      if (Paren)
        OS << ')';
    }
    return;
  }
  case SideCondKind::Or: {
    bool First = true;
    for (const SideCondPtr &Child : C->children()) {
      if (!First)
        OS << " || ";
      First = false;
      printSideCondInto(Child, OS);
    }
    return;
  }
  case SideCondKind::Not:
    OS << "!(";
    printSideCondInto(C->children()[0], OS);
    OS << ')';
    return;
  case SideCondKind::Forall: {
    OS << "forall ";
    bool First = true;
    for (Symbol B : C->boundVars()) {
      if (!First)
        OS << ", ";
      First = false;
      OS << B.str();
    }
    OS << " . (";
    printSideCondInto(C->children()[0], OS);
    OS << ')';
    return;
  }
  }
}

} // namespace

std::string pec::printExpr(const ExprPtr &E) {
  std::ostringstream OS;
  printExprInto(E, OS, 0);
  return OS.str();
}

std::string pec::printStmt(const StmtPtr &S, unsigned Indent) {
  std::ostringstream OS;
  if (S->kind() == StmtKind::Seq && S->label().empty()) {
    for (const StmtPtr &C : S->stmts())
      printStmtInto(C, OS, Indent);
  } else {
    printStmtInto(S, OS, Indent);
  }
  return OS.str();
}

std::string pec::printSideCond(const SideCondPtr &C) {
  std::ostringstream OS;
  printSideCondInto(C, OS);
  return OS.str();
}

std::string pec::printMeaningTerm(const MeaningTermPtr &T) {
  switch (T->kind()) {
  case MeaningTermKind::StateS:
    return "s";
  case MeaningTermKind::Step:
    return "step(" + printMeaningTerm(T->lhs()) + ", " +
           std::string(T->param().str()) + ")";
  case MeaningTermKind::Eval:
    return "eval(" + printMeaningTerm(T->lhs()) + ", " +
           std::string(T->param().str()) + ")";
  case MeaningTermKind::IntLit:
    return std::to_string(T->intValue());
  case MeaningTermKind::Add:
    return "(" + printMeaningTerm(T->lhs()) + " + " +
           printMeaningTerm(T->rhs()) + ")";
  case MeaningTermKind::Sub:
    return "(" + printMeaningTerm(T->lhs()) + " - " +
           printMeaningTerm(T->rhs()) + ")";
  case MeaningTermKind::Mul:
    return "(" + printMeaningTerm(T->lhs()) + " * " +
           printMeaningTerm(T->rhs()) + ")";
  case MeaningTermKind::Neg:
    return "-" + printMeaningTerm(T->lhs());
  }
  return "?";
}

std::string pec::printMeaningForm(const MeaningFormPtr &F) {
  auto Join = [&](const char *Sep) {
    std::string Out = "(";
    for (size_t I = 0; I < F->children().size(); ++I) {
      if (I)
        Out += Sep;
      Out += printMeaningForm(F->children()[I]);
    }
    return Out + ")";
  };
  switch (F->kind()) {
  case MeaningFormKind::True:
    return "true";
  case MeaningFormKind::Eq:
    return printMeaningTerm(F->lhsTerm()) + " == " +
           printMeaningTerm(F->rhsTerm());
  case MeaningFormKind::Ne:
    return printMeaningTerm(F->lhsTerm()) + " != " +
           printMeaningTerm(F->rhsTerm());
  case MeaningFormKind::Lt:
    return printMeaningTerm(F->lhsTerm()) + " < " +
           printMeaningTerm(F->rhsTerm());
  case MeaningFormKind::Le:
    return printMeaningTerm(F->lhsTerm()) + " <= " +
           printMeaningTerm(F->rhsTerm());
  case MeaningFormKind::And:
    return Join(" && ");
  case MeaningFormKind::Or:
    return Join(" || ");
  case MeaningFormKind::Not:
    return "!(" + printMeaningForm(F->children()[0]) + ")";
  case MeaningFormKind::Implies:
    return "(" + printMeaningForm(F->children()[0]) + " => " +
           printMeaningForm(F->children()[1]) + ")";
  }
  return "?";
}

std::string pec::printFactDecl(const FactDecl &D) {
  std::string Out = "fact " + std::string(D.Name.str()) + "(";
  for (size_t I = 0; I < D.Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::string(D.Params[I].str());
  }
  Out += ") has meaning\n  " + printMeaningForm(D.Body) + ";\n";
  return Out;
}

std::string pec::printRule(const Rule &R) {
  std::ostringstream OS;
  OS << "rule " << R.Name << " {\n"
     << printStmt(R.Before, 1) << "} => {\n"
     << printStmt(R.After, 1) << "}";
  if (R.Cond && R.Cond->kind() != SideCondKind::True)
    OS << "\nwhere " << printSideCond(R.Cond);
  OS << ";\n";
  return OS.str();
}
