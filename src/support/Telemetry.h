//===- Telemetry.h - Structured tracing and metrics -------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec::telemetry`: a zero-dependency tracing and metrics layer for the
/// PEC pipeline (see docs/OBSERVABILITY.md for the span taxonomy and the
/// serialized schemas).
///
/// Three primitives:
///
///   * **Spans** — RAII scopes (`Span`) recording nested wall-clock
///     intervals into a per-thread event buffer. `writeChromeTrace`
///     serializes all buffers as Chrome `trace_event` JSON, loadable in
///     `chrome://tracing` or https://ui.perfetto.dev.
///   * **Counters** — named monotonic counters (`counterAdd`), aggregated
///     globally and dumped into the flat JSON stats report
///     (`writeCounterReport`).
///   * **Instants** — point events with string payloads (`instant`), used
///     e.g. to dump failed ATP obligations into the trace.
///
/// All three are inert unless tracing is enabled: every entry point starts
/// with a branch on one relaxed atomic flag (`enabled()`), so the
/// instrumented pipeline runs within noise of the uninstrumented one when
/// tracing is off (the default).
///
/// Orthogonally — and *always on*, because it is a handful of thread-local
/// loads per prover query — `PurposeScope` tags a dynamic extent with the
/// purpose of the ATP queries issued inside it (path pruning, proof
/// obligation, permute condition, strengthening), which `Atp` uses to
/// attribute query counts and time per purpose in `AtpStats`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_TELEMETRY_H
#define PEC_SUPPORT_TELEMETRY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pec {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Enable flag
//===----------------------------------------------------------------------===//

/// True when tracing/metrics collection is on. A single relaxed atomic
/// load; every other entry point bails out immediately when false.
bool enabled();

/// Turns collection on or off. Enabling also (re)starts the trace clock.
void setEnabled(bool On);

/// Drops all buffered events and counters (does not change the flag).
void reset();

//===----------------------------------------------------------------------===//
// ATP query purposes
//===----------------------------------------------------------------------===//

/// Why the pipeline issued a theorem-prover query. Kept in sync with
/// `purposeName` and the `by_purpose` report schema.
enum class Purpose : uint8_t {
  Other = 0,        ///< Untagged queries.
  PathPruning,      ///< Joint-feasibility checks discarding path pairs.
  Obligation,       ///< First validity check of a simulation constraint.
  PermuteCondition, ///< The five Permute Theorem conditions.
  Strengthening,    ///< Re-checks after a predicate was strengthened.
  Minimize,         ///< Diagnosis: obligation-minimizer re-queries.
};
constexpr size_t NumPurposes = 6;

/// Stable lower-case name of \p P ("path-pruning", "obligation", ...).
const char *purposeName(Purpose P);

/// RAII: tags the current thread's dynamic extent with a query purpose.
/// Always active (not gated on `enabled()`); cost is two thread-local
/// accesses.
class PurposeScope {
public:
  explicit PurposeScope(Purpose P);
  ~PurposeScope();
  PurposeScope(const PurposeScope &) = delete;
  PurposeScope &operator=(const PurposeScope &) = delete;

private:
  Purpose Saved;
};

/// The purpose currently tagged on this thread (Other by default).
Purpose currentPurpose();

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// RAII scoped span. Records a Chrome `ph:"X"` complete event covering the
/// scope's lifetime; nesting is expressed by timestamps (the Chrome trace
/// model). `arg` attaches string key/values shown in the trace viewer.
class Span {
public:
  /// \p Name must outlive the span only until the constructor returns (it
  /// is copied when tracing is on, ignored otherwise). \p Category groups
  /// spans in the viewer ("pec", "atp", "permute", ...).
  Span(const char *Name, const char *Category = "pec");
  Span(const std::string &Name, const char *Category = "pec");
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a string argument (no-op when tracing is off).
  void arg(const char *Key, const std::string &Value);
  void arg(const char *Key, uint64_t Value);

  /// Closes the span before the scope ends (the destructor then does
  /// nothing). For intervals that do not align with a C++ scope.
  void end();

private:
  /// Index into the thread buffer, or SIZE_MAX when tracing was off at
  /// construction.
  size_t Slot = static_cast<size_t>(-1);
};

/// Point event with an optional payload (rendered as an `args` entry).
void instant(const char *Name, const char *Category,
             const std::string &Payload = std::string());

/// Chrome-trace *flow* events: a `flowBegin` (ph `"s"`) and a `flowEnd`
/// (ph `"f"`, `bp:"e"`) with the same name and id render as an arrow
/// between the two enclosing slices — across threads. The pool emits one
/// pair per submitted task (id from `trace::freshId()`), so Perfetto
/// shows which thread caused each stolen task (docs/PARALLELISM.md).
/// \p Name must match between the two ends; both are no-ops when tracing
/// is off.
void flowBegin(const char *Name, uint64_t Id);
void flowEnd(const char *Name, uint64_t Id);

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

/// Adds \p Delta to the named counter (no-op when tracing is off).
/// Names are slash-separated paths, e.g. "engine/copy_propagation/matches".
void counterAdd(const std::string &Name, uint64_t Delta = 1);

/// Snapshot of all counters, sorted by name.
std::vector<std::pair<std::string, uint64_t>> counterSnapshot();

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

/// Escapes \p S for embedding in a JSON string literal (no quotes added).
std::string jsonEscape(const std::string &S);

/// Serializes every thread's event buffer as Chrome trace_event JSON
/// (`{"traceEvents": [...]}`). Returns false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Renders the counter table as a flat JSON object string
/// (`{"counters": {name: value, ...}}`).
std::string counterReportJson();

} // namespace telemetry
} // namespace pec

#endif // PEC_SUPPORT_TELEMETRY_H
