//===- Escape.cpp - Shared string escapers -----------------------------------------===//

#include "support/Escape.h"

#include <cstdio>

std::string pec::escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string pec::escapeDot(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\l";
      break;
    default:
      if (C >= 0x20)
        Out += static_cast<char>(C);
    }
  }
  return Out;
}
