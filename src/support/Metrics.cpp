//===- Metrics.cpp - Always-on counters, gauges, and histograms -----------===//

#include "support/Metrics.h"

#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

using namespace pec;
using namespace pec::metrics;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *metrics::counterName(Counter C) {
  switch (C) {
  case Counter::AtpCacheHits:
    return "atp_cache_hits";
  case Counter::AtpCacheMisses:
    return "atp_cache_misses";
  case Counter::AtpCacheBypasses:
    return "atp_cache_bypasses";
  case Counter::AtpCacheDiskHits:
    return "atp_cache_disk_hits";
  case Counter::SlowQueries:
    return "slow_queries";
  case Counter::FlightDumpsSuppressed:
    return "flight_dumps_suppressed";
  case Counter::AtpSatClosed:
    return "atp_sat_closed";
  }
  return "unknown";
}

const char *metrics::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::PoolQueueDepth:
    return "pool_queue_depth";
  case Gauge::PoolWorkers:
    return "pool_workers";
  }
  return "unknown";
}

const char *metrics::histName(Hist H) {
  switch (H) {
  case Hist::AtpQueryUsOther:
  case Hist::AtpQueryUsPathPruning:
  case Hist::AtpQueryUsObligation:
  case Hist::AtpQueryUsPermuteCondition:
  case Hist::AtpQueryUsStrengthening:
  case Hist::AtpQueryUsMinimize:
    return "atp_query_us";
  case Hist::RuleProveUs:
    return "rule_prove_us";
  case Hist::WaveWidth:
    return "wave_width";
  case Hist::CacheWaitUs:
    return "cache_wait_us";
  case Hist::PoolTaskUs:
    return "pool_task_us";
  case Hist::SatConflictSize:
    return "sat_conflict_size";
  case Hist::TheoryConflictSize:
    return "theory_conflict_size";
  }
  return "unknown";
}

const char *metrics::histLabel(Hist H) {
  switch (H) {
  case Hist::AtpQueryUsOther:
    return "purpose=\"other\"";
  case Hist::AtpQueryUsPathPruning:
    return "purpose=\"path-pruning\"";
  case Hist::AtpQueryUsObligation:
    return "purpose=\"obligation\"";
  case Hist::AtpQueryUsPermuteCondition:
    return "purpose=\"permute-condition\"";
  case Hist::AtpQueryUsStrengthening:
    return "purpose=\"strengthening\"";
  case Hist::AtpQueryUsMinimize:
    return "purpose=\"minimize\"";
  default:
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

namespace {

/// Position of the most significant set bit (V > 0).
unsigned msbIndex(uint64_t V) {
  unsigned Msb = 0;
  while (V >>= 1)
    ++Msb;
  return Msb;
}

} // namespace

unsigned metrics::bucketIndex(uint64_t V) {
  if (V < SubBuckets)
    return static_cast<unsigned>(V);
  unsigned Msb = msbIndex(V);
  unsigned Octave = Msb - SubBucketLog2;
  if (Octave >= MaxOctave)
    return NumBuckets - 1; // Clamp: the top bucket is open-ended.
  unsigned Sub =
      static_cast<unsigned>((V >> (Msb - SubBucketLog2)) & (SubBuckets - 1));
  return SubBuckets + Octave * SubBuckets + Sub;
}

uint64_t metrics::bucketLowerBound(unsigned Idx) {
  if (Idx < SubBuckets)
    return Idx;
  unsigned Octave = (Idx - SubBuckets) / SubBuckets;
  unsigned Sub = (Idx - SubBuckets) % SubBuckets;
  return static_cast<uint64_t>(SubBuckets + Sub) << Octave;
}

uint64_t metrics::bucketUpperBound(unsigned Idx) {
  if (Idx == NumBuckets - 1)
    return UINT64_MAX; // Open-ended clamp bucket.
  return bucketLowerBound(Idx + 1) - 1;
}

//===----------------------------------------------------------------------===//
// Per-thread shards and the registry
//===----------------------------------------------------------------------===//

namespace {

struct Shard {
  std::atomic<uint64_t> Counters[NumCounters] = {};
  std::atomic<int64_t> Gauges[NumGauges] = {};
  std::atomic<uint64_t> HistBuckets[NumHists][NumBuckets] = {};
  std::atomic<uint64_t> HistSum[NumHists] = {};
  std::atomic<uint64_t> HistMax[NumHists] = {};
};

struct Registry {
  std::mutex Mutex;
  // Shards are never freed: a thread's counts must survive its exit, and
  // the set of recording threads is bounded (pool workers + main).
  std::vector<std::unique_ptr<Shard>> Shards;
};

Registry &registry() {
  static Registry *R = new Registry; // Leaked: usable during shutdown.
  return *R;
}

thread_local Shard *LocalShard = nullptr;

Shard &shard() {
  if (LocalShard)
    return *LocalShard;
  auto S = std::make_unique<Shard>();
  LocalShard = S.get();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Shards.push_back(std::move(S));
  return *LocalShard;
}

void relaxedMax(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (Cur < V &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

} // namespace

void metrics::add(Counter C, uint64_t Delta) {
  shard().Counters[static_cast<size_t>(C)].fetch_add(
      Delta, std::memory_order_relaxed);
}

void metrics::gaugeAdd(Gauge G, int64_t Delta) {
  shard().Gauges[static_cast<size_t>(G)].fetch_add(Delta,
                                                   std::memory_order_relaxed);
}

void metrics::record(Hist H, uint64_t Value) {
  Shard &S = shard();
  size_t I = static_cast<size_t>(H);
  S.HistBuckets[I][bucketIndex(Value)].fetch_add(1,
                                                 std::memory_order_relaxed);
  S.HistSum[I].fetch_add(Value, std::memory_order_relaxed);
  relaxedMax(S.HistMax[I], Value);
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

void HistogramSnapshot::record(uint64_t V) {
  ++Count;
  Sum += V;
  if (V > Max)
    Max = V;
  ++Buckets[bucketIndex(V)];
}

uint64_t HistogramSnapshot::percentile(double P) const {
  if (Count == 0)
    return 0;
  if (P < 0)
    P = 0;
  if (P > 1)
    P = 1;
  // Rank = ceil(P * Count), at least 1: the value at that rank in sorted
  // order lives in the first bucket whose cumulative count reaches it.
  uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(Count));
  if (static_cast<double>(Rank) < P * static_cast<double>(Count))
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  uint64_t Cumulative = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank) {
      // The top bucket is open-ended; report the exact max instead.
      uint64_t Ub = bucketUpperBound(I);
      return Ub > Max ? Max : Ub;
    }
  }
  return Max;
}

Snapshot metrics::snapshot() {
  Snapshot Out;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const std::unique_ptr<Shard> &S : R.Shards) {
    for (size_t C = 0; C < NumCounters; ++C)
      Out.Counters[C] += S->Counters[C].load(std::memory_order_relaxed);
    for (size_t G = 0; G < NumGauges; ++G)
      Out.Gauges[G] += S->Gauges[G].load(std::memory_order_relaxed);
    for (size_t H = 0; H < NumHists; ++H) {
      HistogramSnapshot &Dst = Out.Hists[H];
      Dst.Sum += S->HistSum[H].load(std::memory_order_relaxed);
      uint64_t M = S->HistMax[H].load(std::memory_order_relaxed);
      if (M > Dst.Max)
        Dst.Max = M;
      for (unsigned B = 0; B < NumBuckets; ++B) {
        uint64_t N = S->HistBuckets[H][B].load(std::memory_order_relaxed);
        Dst.Buckets[B] += N;
        Dst.Count += N;
      }
    }
  }
  return Out;
}

void metrics::resetForTest() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const std::unique_ptr<Shard> &S : R.Shards) {
    for (size_t C = 0; C < NumCounters; ++C)
      S->Counters[C].store(0, std::memory_order_relaxed);
    for (size_t G = 0; G < NumGauges; ++G)
      S->Gauges[G].store(0, std::memory_order_relaxed);
    for (size_t H = 0; H < NumHists; ++H) {
      S->HistSum[H].store(0, std::memory_order_relaxed);
      S->HistMax[H].store(0, std::memory_order_relaxed);
      for (unsigned B = 0; B < NumBuckets; ++B)
        S->HistBuckets[H][B].store(0, std::memory_order_relaxed);
    }
  }
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

namespace {

void appendLine(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

void renderHistogram(std::string &Out, const char *Family,
                     const HistogramSnapshot &H, const char *Label) {
  std::string Series = Label ? std::string(Label) + "," : std::string();
  uint64_t Cumulative = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    if (H.Buckets[B] == 0)
      continue; // Sparse: emit only buckets that moved the count.
    Cumulative += H.Buckets[B];
    appendLine(Out, "pec_%s_bucket{%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
               Family, Series.c_str(),
               B == NumBuckets - 1 ? H.Max : bucketUpperBound(B),
               Cumulative);
  }
  if (Label) {
    appendLine(Out, "pec_%s_bucket{%s,le=\"+Inf\"} %" PRIu64 "\n", Family,
               Label, H.Count);
    appendLine(Out, "pec_%s_sum{%s} %" PRIu64 "\n", Family, Label, H.Sum);
    appendLine(Out, "pec_%s_count{%s} %" PRIu64 "\n", Family, Label,
               H.Count);
  } else {
    appendLine(Out, "pec_%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", Family,
               H.Count);
    appendLine(Out, "pec_%s_sum %" PRIu64 "\n", Family, H.Sum);
    appendLine(Out, "pec_%s_count %" PRIu64 "\n", Family, H.Count);
  }
}

} // namespace

std::string metrics::renderPrometheus(const Snapshot &S) {
  std::string Out;
  for (size_t C = 0; C < NumCounters; ++C) {
    const char *Name = counterName(static_cast<Counter>(C));
    appendLine(Out, "# TYPE pec_%s_total counter\n", Name);
    appendLine(Out, "pec_%s_total %" PRIu64 "\n", Name, S.Counters[C]);
  }
  for (size_t G = 0; G < NumGauges; ++G) {
    const char *Name = gaugeName(static_cast<Gauge>(G));
    appendLine(Out, "# TYPE pec_%s gauge\n", Name);
    appendLine(Out, "pec_%s %" PRId64 "\n", Name, S.Gauges[G]);
  }
  // One TYPE header per family; the per-purpose latency slices are series
  // of the same family distinguished by the purpose label.
  const char *PrevFamily = "";
  for (size_t H = 0; H < NumHists; ++H) {
    const char *Family = histName(static_cast<Hist>(H));
    if (std::string(Family) != PrevFamily) {
      appendLine(Out, "# TYPE pec_%s histogram\n", Family);
      PrevFamily = Family;
    }
    renderHistogram(Out, Family, S.Hists[H],
                    histLabel(static_cast<Hist>(H)));
  }
  return Out;
}
