//===- Diagnostics.h - Error reporting for the PEC toolchain ---*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics: a source location, an error value that carries a
/// message and location, and a fatal-error helper for invariant violations
/// that user input can trigger (e.g. parse errors in rule files).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_DIAGNOSTICS_H
#define PEC_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace pec {

/// A position in a source buffer, 1-based. Line 0 means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// An error with a message and an optional source location.
class Diag {
public:
  Diag() = default;
  Diag(std::string Message, SourceLoc Loc = SourceLoc())
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc location() const { return Loc; }

  /// Renders "line:col: message" (or just the message if no location).
  std::string str() const;

private:
  std::string Message;
  SourceLoc Loc;
};

/// Poor man's llvm::Expected: either a value or a Diag.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diag Error) : Error(std::move(Error)) {}

  explicit operator bool() const { return Value.has_value(); }
  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }
  const Diag &error() const { return Error; }
  T take() { return std::move(*Value); }

private:
  std::optional<T> Value;
  Diag Error;
};

/// Prints the message to stderr and aborts. Used for internal invariant
/// violations that cannot be recovered from.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace pec

#endif // PEC_SUPPORT_DIAGNOSTICS_H
