//===- Trace.h - Causal trace contexts and the run journal ------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec::trace`: the causal tracing layer (docs/OBSERVABILITY.md, "Causal
/// tracing and the run journal"). Where `pec::telemetry` records *where
/// time went* per thread, this layer records *why each span ran*: every
/// span carries a TraceId (one proving run or one root rule proof), its
/// own SpanId, and the SpanId of the span that caused it — including
/// across `ThreadPool::submit`, which captures the submitting context and
/// re-installs it on the executing worker. The result is the causal DAG
/// rule → wave → obligation → ATP query that `pec report timeline`
/// reconstructs to compute the critical path and wasted-work accounting.
///
/// Output is an append-only JSONL **run journal** (`--journal FILE`),
/// schema `pec-journal-v1`:
///
///   {"schema":"pec-journal-v1","start_us":0,...}         header, line 1
///   {"ev":"b","ts":12,"trace":1,"span":7,"parent":3,
///    "tid":2,"name":"atp.query","purpose":"obligation"}  span begin
///   {"ev":"e","ts":90,"span":7}                          span end
///   {"ev":"i","ts":55,"span":7,"tid":2,"name":"core_skip",...}  instant
///
/// Attribution fields (rule, wave, obligation, purpose, cache, ...) are
/// flat string members on the end line — a span's attrs are often only
/// known mid-flight (cache hit/miss, verdict), so the begin line is
/// written eagerly for causal ordering and the end line carries the
/// attrs; readers merge the two by span id. Lines are written atomically
/// under one mutex, and a parent's begin always precedes its children's
/// (the parent span exists before anything it causes), so a single
/// forward pass can resolve every parent.
///
/// The layer is inert — context propagation included — unless a journal
/// is open: every entry point starts with one relaxed atomic load.
/// Span ids are also consumed by the Chrome-trace flow events
/// (`telemetry::flowBegin/flowEnd`) so Perfetto draws cross-thread arrows
/// between a submit site and the task it caused.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_TRACE_H
#define PEC_SUPPORT_TRACE_H

#include <cstdint>
#include <string>

namespace pec {
namespace trace {

/// The causal coordinates of the current dynamic extent: which trace
/// (proving run / root proof) it belongs to and which span caused it.
/// Zero ids mean "none".
struct Context {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
};

/// True when a journal is open (one relaxed atomic load). Every other
/// entry point is a no-op when false.
bool enabled();

/// Opens the journal at \p Path (truncating), writes the schema header,
/// and enables the layer. Returns false on I/O failure. Not thread-safe
/// against concurrent spans — call before proving starts.
bool journalOpen(const std::string &Path);

/// Flushes and closes the journal and disables the layer. Safe to call
/// when no journal is open.
void journalClose();

/// The calling thread's current context (zeros when tracing is off or
/// outside any span).
Context current();

/// RAII: installs \p C as the calling thread's context, restoring the
/// previous one on destruction. ThreadPool::submit uses this to carry the
/// submitter's context onto the worker that executes the task.
class Adopt {
public:
  explicit Adopt(const Context &C);
  ~Adopt();
  Adopt(const Adopt &) = delete;
  Adopt &operator=(const Adopt &) = delete;

private:
  Context Saved;
};

/// RAII causal span: on construction (journal open) allocates a SpanId,
/// records the current span as parent — starting a fresh trace when there
/// is none — emits the begin line, and becomes the thread's current span.
/// Attribution fields accumulate and are emitted on the end line.
class Span {
public:
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches an attribution field (emitted on the end line). Keys must
  /// be literal identifiers; values are JSON-escaped. No-op when the
  /// journal was closed at construction or the span already ended.
  void attr(const char *Key, const std::string &Value);
  void attr(const char *Key, uint64_t Value);

  /// Emits the end line before the scope closes (destructor then no-ops).
  void end();

  /// This span's id (0 when tracing was off at construction).
  uint64_t id() const { return Id; }

private:
  uint64_t Id = 0;
  Context Saved;
  /// Pre-rendered ",\"k\":\"v\"" attr fields for the end line.
  std::string EndAttrs;
};

/// Point event attached to the current span (e.g. a strengthening
/// re-check skipped by an unsat core). \p Key/\p Value add one
/// attribution field ("" key = none).
void instant(const char *Name, const char *Key = "",
             const std::string &Value = std::string());

/// Allocates a fresh id from the span-id counter. Used for Chrome-trace
/// flow bindings that need an id but no journal span.
uint64_t freshId();

} // namespace trace
} // namespace pec

#endif // PEC_SUPPORT_TRACE_H
