//===- Telemetry.cpp - Structured tracing and metrics ----------------------------===//

#include "support/Telemetry.h"

#include "support/Escape.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <unordered_map>

using namespace pec;
using namespace pec::telemetry;

namespace {

using Clock = std::chrono::steady_clock;

/// One recorded event. Complete spans ("X") carry a duration; instants
/// ("i") a payload.
struct Event {
  std::string Name;
  const char *Category = "pec";
  char Phase = 'X';
  uint64_t StartMicros = 0;
  uint64_t DurMicros = 0;
  /// Binding id for flow events (phases 's'/'f'); 0 otherwise.
  uint64_t FlowId = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Per-thread event buffer, registered globally so `writeChromeTrace` can
/// see every thread's events after the fact. Buffers outlive their threads
/// (they are owned by the registry, not by the thread).
struct ThreadBuffer {
  uint32_t Tid = 0;
  std::vector<Event> Events;
  /// Stack of open span slots, so Span::arg can reach its event.
  std::vector<size_t> OpenSpans;
};

struct Registry {
  std::mutex Mutex;
  std::vector<ThreadBuffer *> Buffers; ///< Owned; never freed (process-lifetime).
  std::map<std::string, uint64_t> Counters;
  Clock::time_point Epoch = Clock::now();
  uint32_t NextTid = 1;
};

Registry &registry() {
  static Registry R;
  return R;
}

std::atomic<bool> EnabledFlag{false};

thread_local ThreadBuffer *LocalBuffer = nullptr;
thread_local Purpose CurrentPurpose = Purpose::Other;

ThreadBuffer &localBuffer() {
  if (!LocalBuffer) {
    auto *B = new ThreadBuffer;
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    B->Tid = R.NextTid++;
    R.Buffers.push_back(B);
    LocalBuffer = B;
  }
  return *LocalBuffer;
}

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            registry().Epoch)
          .count());
}

} // namespace

//===----------------------------------------------------------------------===//
// Enable flag
//===----------------------------------------------------------------------===//

bool telemetry::enabled() {
  return EnabledFlag.load(std::memory_order_relaxed);
}

void telemetry::setEnabled(bool On) {
  if (On) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Epoch = Clock::now();
  }
  EnabledFlag.store(On, std::memory_order_relaxed);
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (ThreadBuffer *B : R.Buffers) {
    B->Events.clear();
    B->OpenSpans.clear();
  }
  R.Counters.clear();
  R.Epoch = Clock::now();
}

//===----------------------------------------------------------------------===//
// Purposes
//===----------------------------------------------------------------------===//

const char *telemetry::purposeName(Purpose P) {
  switch (P) {
  case Purpose::Other:
    return "other";
  case Purpose::PathPruning:
    return "path-pruning";
  case Purpose::Obligation:
    return "obligation";
  case Purpose::PermuteCondition:
    return "permute-condition";
  case Purpose::Strengthening:
    return "strengthening";
  case Purpose::Minimize:
    return "minimize";
  }
  return "other";
}

PurposeScope::PurposeScope(Purpose P) : Saved(CurrentPurpose) {
  CurrentPurpose = P;
}

PurposeScope::~PurposeScope() { CurrentPurpose = Saved; }

Purpose telemetry::currentPurpose() { return CurrentPurpose; }

//===----------------------------------------------------------------------===//
// Spans and instants
//===----------------------------------------------------------------------===//

Span::Span(const char *Name, const char *Category) {
  if (!enabled())
    return;
  ThreadBuffer &B = localBuffer();
  Slot = B.Events.size();
  Event E;
  E.Name = Name;
  E.Category = Category;
  E.StartMicros = nowMicros();
  B.Events.push_back(std::move(E));
  B.OpenSpans.push_back(Slot);
}

Span::Span(const std::string &Name, const char *Category)
    : Span(Name.c_str(), Category) {}

Span::~Span() { end(); }

void Span::end() {
  if (Slot == static_cast<size_t>(-1))
    return;
  // The buffer exists: the constructor created it.
  ThreadBuffer &B = *LocalBuffer;
  Event &E = B.Events[Slot];
  E.DurMicros = nowMicros() - E.StartMicros;
  if (!B.OpenSpans.empty() && B.OpenSpans.back() == Slot)
    B.OpenSpans.pop_back();
  Slot = static_cast<size_t>(-1);
}

void Span::arg(const char *Key, const std::string &Value) {
  if (Slot == static_cast<size_t>(-1))
    return;
  LocalBuffer->Events[Slot].Args.emplace_back(Key, Value);
}

void Span::arg(const char *Key, uint64_t Value) {
  arg(Key, std::to_string(Value));
}

void telemetry::instant(const char *Name, const char *Category,
                        const std::string &Payload) {
  if (!enabled())
    return;
  ThreadBuffer &B = localBuffer();
  Event E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'i';
  E.StartMicros = nowMicros();
  if (!Payload.empty())
    E.Args.emplace_back("payload", Payload);
  B.Events.push_back(std::move(E));
}

namespace {

void recordFlow(const char *Name, uint64_t Id, char Phase) {
  if (!telemetry::enabled())
    return;
  ThreadBuffer &B = localBuffer();
  Event E;
  E.Name = Name;
  E.Category = "flow";
  E.Phase = Phase;
  E.StartMicros = nowMicros();
  E.FlowId = Id;
  B.Events.push_back(std::move(E));
}

} // namespace

void telemetry::flowBegin(const char *Name, uint64_t Id) {
  recordFlow(Name, Id, 's');
}

void telemetry::flowEnd(const char *Name, uint64_t Id) {
  recordFlow(Name, Id, 'f');
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

void telemetry::counterAdd(const std::string &Name, uint64_t Delta) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Counters[Name] += Delta;
}

std::vector<std::pair<std::string, uint64_t>> telemetry::counterSnapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return {R.Counters.begin(), R.Counters.end()};
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string telemetry::jsonEscape(const std::string &S) {
  return escapeJson(S); // One escaper for every serializer: support/Escape.h.
}

namespace {

void appendEventJson(std::string &Out, const Event &E, uint32_t Tid) {
  Out += "{\"name\":\"";
  Out += jsonEscape(E.Name);
  Out += "\",\"cat\":\"";
  Out += jsonEscape(E.Category);
  Out += "\",\"ph\":\"";
  Out += E.Phase;
  Out += "\",\"ts\":";
  Out += std::to_string(E.StartMicros);
  if (E.Phase == 'X') {
    Out += ",\"dur\":";
    Out += std::to_string(E.DurMicros);
  }
  if (E.Phase == 'i')
    Out += ",\"s\":\"t\"";
  if (E.Phase == 's' || E.Phase == 'f') {
    Out += ",\"id\":";
    Out += std::to_string(E.FlowId);
    // Bind the arrow head to the enclosing slice, not the next one.
    if (E.Phase == 'f')
      Out += ",\"bp\":\"e\"";
  }
  Out += ",\"pid\":1,\"tid\":";
  Out += std::to_string(Tid);
  if (!E.Args.empty()) {
    Out += ",\"args\":{";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        Out += ',';
      Out += '"';
      Out += jsonEscape(E.Args[I].first);
      Out += "\":\"";
      Out += jsonEscape(E.Args[I].second);
      Out += '"';
    }
    Out += '}';
  }
  Out += '}';
}

} // namespace

bool telemetry::writeChromeTrace(const std::string &Path) {
  std::string Out = "{\"traceEvents\":[\n";
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    bool First = true;
    for (const ThreadBuffer *B : R.Buffers) {
      for (const Event &E : B->Events) {
        if (!First)
          Out += ",\n";
        First = false;
        appendEventJson(Out, E, B->Tid);
      }
    }
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Out.data(), 1, Out.size(), F) == Out.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

std::string telemetry::counterReportJson() {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : counterSnapshot()) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(Name);
    Out += "\":";
    Out += std::to_string(Value);
  }
  Out += "}}";
  return Out;
}
