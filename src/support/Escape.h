//===- Escape.h - Shared string escapers ------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one escaping module every serializer shares. JSON escaping is used
/// by the telemetry trace writer, the pec-report renderer, and the
/// diagnosis objects; DOT escaping by the `pec explain --dot` CFG export.
/// Keeping both here (instead of per-writer copies) means a hostile rule
/// name that breaks one output format is a bug in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_ESCAPE_H
#define PEC_SUPPORT_ESCAPE_H

#include <string>

namespace pec {

/// Escapes \p S for embedding in a JSON string literal (no quotes added):
/// backslash-escapes quotes and control characters, \uXXXX for the rest of
/// the C0 range.
std::string escapeJson(const std::string &S);

/// Escapes \p S for embedding in a double-quoted Graphviz DOT string (no
/// quotes added): escapes `"` and `\`, and turns newlines into the DOT
/// left-justified line break `\l`. Other control characters are dropped
/// (DOT has no \uXXXX form).
std::string escapeDot(const std::string &S);

} // namespace pec

#endif // PEC_SUPPORT_ESCAPE_H
