//===- StringInterner.h - Interned identifiers -----------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers (`Symbol`). Variable names, meta-variable names and
/// labels are interned so that identity comparison is an integer compare and
/// symbols can key dense containers. A single global interner is used; the
/// set of distinct identifiers in any PEC run is tiny.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_STRINGINTERNER_H
#define PEC_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pec {

/// An interned string. Default-constructed symbols are "empty" and compare
/// equal to each other only.
class Symbol {
public:
  Symbol() = default;

  /// Interns \p Name (creating it on first use).
  static Symbol get(std::string_view Name);

  bool empty() const { return Id == 0; }
  std::string_view str() const;
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id = 0;
};

} // namespace pec

template <> struct std::hash<pec::Symbol> {
  size_t operator()(pec::Symbol S) const { return S.id(); }
};

#endif // PEC_SUPPORT_STRINGINTERNER_H
