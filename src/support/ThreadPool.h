//===- ThreadPool.h - Work-stealing task scheduler --------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pec::parallel` scheduler: a work-stealing thread pool used to prove
/// the rules of a `.rules` file concurrently and, one level down, to
/// fan out the proof obligations of a single rule inside the Checker
/// (docs/PARALLELISM.md has the full design).
///
/// Structure: each worker owns a deque of tasks; the owner pushes and pops
/// at the back, idle workers steal from the front of a victim's deque.
/// `TaskGroup` tracks a batch of spawned tasks; `TaskGroup::wait()` *helps*
/// — a waiter that is itself a pool worker executes pending tasks instead
/// of blocking, which makes nested parallelism (a rule-level task spawning
/// an obligation-level wave) deadlock-free even on a pool of one thread.
///
/// Tasks must not throw: the PEC pipeline reports errors by value
/// (`Expected`, `CheckerResult`), and a throwing task would terminate.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_THREADPOOL_H
#define PEC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pec {

class TaskGroup;

class ThreadPool {
public:
  /// Spins up \p Threads workers. A count of 0 or 1 still creates a valid
  /// pool: tasks then run inline inside TaskGroup::wait() on the caller's
  /// thread (helping), so callers need no special sequential path.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const { return NumWorkers; }

  /// The default for `--jobs`: std::thread::hardware_concurrency, clamped
  /// to at least 1 (the standard permits a 0 answer).
  static unsigned hardwareJobs();

private:
  friend class TaskGroup;

  struct WorkerDeque {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  /// Enqueues a task on the submitting worker's own deque (or, from an
  /// external thread, round-robin over workers) and wakes a sleeper.
  void submit(std::function<void()> Task);

  /// Pops one runnable task: own deque back first, then steals from the
  /// front of the other deques. Returns false when everything is empty.
  bool tryRunOneTask();

  void workerLoop(unsigned Index);

  /// Index of the calling thread's own deque, or -1 for external threads.
  int selfIndex() const;

  unsigned NumWorkers;
  std::vector<WorkerDeque> Deques;
  std::vector<std::thread> Workers;
  std::atomic<size_t> NextExternalDeque{0};
  std::atomic<bool> ShuttingDown{false};

  std::mutex SleepMutex;
  std::condition_variable SleepCv;
};

/// Tracks a batch of tasks spawned onto a pool so the owner can wait for
/// exactly its own batch (not the whole pool). wait() helps execute pool
/// tasks while the batch is unfinished, so nesting TaskGroups across
/// parallelism levels cannot deadlock.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &Pool) : Pool(Pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  void spawn(std::function<void()> Task);

  /// Blocks until every task spawned on this group has finished. Helps run
  /// pool tasks (this group's or any other's) while waiting.
  void wait();

private:
  ThreadPool &Pool;
  std::atomic<size_t> Pending{0};
  std::mutex DoneMutex;
  std::condition_variable DoneCv;
};

} // namespace pec

#endif // PEC_SUPPORT_THREADPOOL_H
