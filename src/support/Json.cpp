//===- Json.cpp - Minimal JSON parser ---------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>

using namespace pec;
using namespace pec::json;

ValuePtr Value::mkNull() { return std::make_shared<Value>(); }

ValuePtr Value::mkBool(bool V) {
  auto P = std::make_shared<Value>();
  P->K = Kind::Bool;
  P->B = V;
  return P;
}

ValuePtr Value::mkNumber(double V) {
  auto P = std::make_shared<Value>();
  P->K = Kind::Number;
  P->N = V;
  return P;
}

ValuePtr Value::mkString(std::string V) {
  auto P = std::make_shared<Value>();
  P->K = Kind::String;
  P->S = std::move(V);
  return P;
}

ValuePtr Value::mkArray(std::vector<ValuePtr> V) {
  auto P = std::make_shared<Value>();
  P->K = Kind::Array;
  P->A = std::move(V);
  return P;
}

ValuePtr Value::mkObject(std::map<std::string, ValuePtr> V) {
  auto P = std::make_shared<Value>();
  P->K = Kind::Object;
  P->O = std::move(V);
  return P;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  ValuePtr run() {
    ValuePtr V = parseValue();
    if (!V)
      return nullptr;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after value");
    return V;
  }

private:
  ValuePtr fail(const char *Msg) {
    if (Error)
      *Error = std::string(Msg) + " at offset " + std::to_string(Pos);
    return nullptr;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  ValuePtr parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return nullptr;
      return Value::mkString(std::move(S));
    }
    if (C == 't')
      return literal("true") ? Value::mkBool(true) : fail("bad literal");
    if (C == 'f')
      return literal("false") ? Value::mkBool(false) : fail("bad literal");
    if (C == 'n')
      return literal("null") ? Value::mkNull() : fail("bad literal");
    return parseNumber();
  }

  ValuePtr parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    char *End = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("malformed number");
    return Value::mkNumber(V);
  }

  bool parseString(std::string &Out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return false;
        }
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code += static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code += static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return false;
          }
        }
        // UTF-8 encode (surrogate pairs are not recombined; the telemetry
        // layer never emits them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("unknown escape");
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  ValuePtr parseArray() {
    consume('[');
    std::vector<ValuePtr> Items;
    skipWs();
    if (consume(']'))
      return Value::mkArray(std::move(Items));
    while (true) {
      ValuePtr V = parseValue();
      if (!V)
        return nullptr;
      Items.push_back(std::move(V));
      if (consume(','))
        continue;
      if (consume(']'))
        return Value::mkArray(std::move(Items));
      return fail("expected ',' or ']'");
    }
  }

  ValuePtr parseObject() {
    consume('{');
    std::map<std::string, ValuePtr> Members;
    skipWs();
    if (consume('}'))
      return Value::mkObject(std::move(Members));
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return nullptr;
      if (!consume(':'))
        return fail("expected ':'");
      ValuePtr V = parseValue();
      if (!V)
        return nullptr;
      Members[Key] = std::move(V);
      if (consume(','))
        continue;
      if (consume('}'))
        return Value::mkObject(std::move(Members));
      return fail("expected ',' or '}'");
    }
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

ValuePtr json::parse(const std::string &Text, std::string *Error) {
  return Parser(Text, Error).run();
}
