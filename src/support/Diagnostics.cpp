//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace pec;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diag::str() const {
  if (!Loc.isValid())
    return Message;
  return Loc.str() + ": " + Message;
}

void pec::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "pec fatal error: %s\n", Message.c_str());
  std::abort();
}
