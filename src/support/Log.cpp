//===- Log.cpp - Leveled structured logging -------------------------------===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include "support/Telemetry.h" // jsonEscape
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace pec {
namespace log {

namespace {

std::atomic<int> ActiveLevel{static_cast<int>(Level::Warn)};
std::atomic<int> ActiveFormat{static_cast<int>(Format::Text)};

/// Serializes emission so concurrent threads never interleave lines.
std::mutex &emitMutex() {
  static std::mutex M;
  return M;
}

struct ContextFrame {
  const char *Key;
  std::string Value;
};

thread_local std::vector<ContextFrame> Context;

const char *levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  case Level::Off:
    return "off";
  }
  return "?";
}

/// ISO8601 UTC with millisecond precision: 2026-08-08T12:00:00.123Z.
std::string timestamp() {
  using namespace std::chrono;
  auto Now = system_clock::now();
  time_t Secs = system_clock::to_time_t(Now);
  auto Millis =
      duration_cast<milliseconds>(Now.time_since_epoch()).count() % 1000;
  struct tm Utc;
  gmtime_r(&Secs, &Utc);
  char Buf[40];
  size_t Len = strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%S", &Utc);
  snprintf(Buf + Len, sizeof(Buf) - Len, ".%03dZ", static_cast<int>(Millis));
  return Buf;
}

/// Keys are literals from our own call sites; values pass through
/// jsonEscape at field-build time, so a field renders verbatim here.
void emitJson(Level L, const char *Name,
              const std::vector<std::pair<std::string, std::string>> &Fields) {
  std::string Line = "{\"ts\":\"" + timestamp() + "\",\"level\":\"" +
                     levelName(L) + "\",\"event\":\"" +
                     telemetry::jsonEscape(Name) + "\"";
  for (const ContextFrame &F : Context)
    Line += ",\"" + std::string(F.Key) + "\":\"" +
            telemetry::jsonEscape(F.Value) + "\"";
  // Join key against the run journal: events emitted inside a causal span
  // carry its ids (only when a --journal is being recorded).
  if (trace::Context TC = trace::current(); TC.SpanId != 0) {
    Line += ",\"trace_id\":" + std::to_string(TC.TraceId);
    Line += ",\"span_id\":" + std::to_string(TC.SpanId);
  }
  for (const auto &F : Fields)
    Line += ",\"" + F.first + "\":" + F.second;
  Line += "}\n";
  std::lock_guard<std::mutex> Lock(emitMutex());
  fputs(Line.c_str(), stderr);
}

void emitText(Level L, const char *Name,
              const std::vector<std::pair<std::string, std::string>> &Fields) {
  std::string Line = timestamp() + " " + levelName(L) + " " + Name;
  for (const ContextFrame &F : Context)
    Line += std::string(" ") + F.Key + "=" + F.Value;
  if (trace::Context TC = trace::current(); TC.SpanId != 0)
    Line += " trace_id=" + std::to_string(TC.TraceId) +
            " span_id=" + std::to_string(TC.SpanId);
  for (const auto &F : Fields)
    Line += " " + F.first + "=" + F.second;
  Line += "\n";
  std::lock_guard<std::mutex> Lock(emitMutex());
  fputs(Line.c_str(), stderr);
}

} // namespace

void setLevel(Level L) {
  ActiveLevel.store(static_cast<int>(L), std::memory_order_relaxed);
}

Level level() {
  return static_cast<Level>(ActiveLevel.load(std::memory_order_relaxed));
}

bool parseLevel(const std::string &Name, Level &Out) {
  if (Name == "debug")
    Out = Level::Debug;
  else if (Name == "info")
    Out = Level::Info;
  else if (Name == "warn")
    Out = Level::Warn;
  else if (Name == "error")
    Out = Level::Error;
  else if (Name == "off")
    Out = Level::Off;
  else
    return false;
  return true;
}

void setFormat(Format F) {
  ActiveFormat.store(static_cast<int>(F), std::memory_order_relaxed);
}

Format format() {
  return static_cast<Format>(ActiveFormat.load(std::memory_order_relaxed));
}

bool parseFormat(const std::string &Name, Format &Out) {
  if (Name == "text")
    Out = Format::Text;
  else if (Name == "json")
    Out = Format::Json;
  else
    return false;
  return true;
}

bool enabled(Level L) {
  return static_cast<int>(L) >=
         ActiveLevel.load(std::memory_order_relaxed);
}

Event::Event(Level L, const char *Name)
    : L(L), Name(Name), Live(enabled(L) && L != Level::Off) {}

Event::Event(Event &&O) noexcept
    : L(O.L), Name(O.Name), Live(O.Live), Fields(std::move(O.Fields)) {
  O.Live = false;
}

Event::~Event() {
  if (!Live)
    return;
  if (format() == Format::Json)
    emitJson(L, Name, Fields);
  else
    emitText(L, Name, Fields);
}

Event &Event::str(const char *Key, const std::string &Value) {
  if (Live)
    Fields.emplace_back(Key, "\"" + telemetry::jsonEscape(Value) + "\"");
  return *this;
}

Event &Event::num(const char *Key, int64_t Value) {
  if (Live) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%" PRId64, Value);
    Fields.emplace_back(Key, Buf);
  }
  return *this;
}

Event &Event::num(const char *Key, uint64_t Value) {
  if (Live) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
    Fields.emplace_back(Key, Buf);
  }
  return *this;
}

Event &Event::real(const char *Key, double Value) {
  if (Live) {
    char Buf[48];
    snprintf(Buf, sizeof(Buf), "%.6g", Value);
    Fields.emplace_back(Key, Buf);
  }
  return *this;
}

Scope::Scope(const char *Key, const std::string &Value) {
  Context.push_back({Key, Value});
}

Scope::~Scope() { Context.pop_back(); }

} // namespace log
} // namespace pec
