//===- Framing.h - CRC-framed binary records --------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Length-prefixed, CRC32-guarded record framing shared by the on-disk
/// AtpCache store (docs/SERVING.md) and anything else that needs
/// crash-safe append-only files. A record on the wire is
///
///   [u32 payload length][u32 crc32(payload)][payload bytes]
///
/// little-endian, no alignment. The reader distinguishes a *clean* end
/// (buffer exhausted exactly at a record boundary) from a *torn* tail
/// (a partial header, a length that overruns the buffer, or a CRC
/// mismatch): a journal written with appendRecord and fsync'd in batches
/// can lose at most the unsynced suffix, and the reader drops exactly
/// that suffix — never a prefix, never a silently corrupted payload.
///
/// Integer helpers are here too so store payloads are encoded in one
/// byte order everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_FRAMING_H
#define PEC_SUPPORT_FRAMING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pec {
namespace framing {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of \p Len bytes.
uint32_t crc32(const void *Data, size_t Len);

/// Appends \p V little-endian.
void appendU32(std::string &Out, uint32_t V);
void appendU64(std::string &Out, uint64_t V);

/// Reads little-endian integers at \p Offset; false when out of range.
/// On success advances \p Offset past the value.
bool readU32(std::string_view In, size_t &Offset, uint32_t &V);
bool readU64(std::string_view In, size_t &Offset, uint64_t &V);

/// Appends one framed record ([len][crc][payload]) to \p Out.
void appendRecord(std::string &Out, std::string_view Payload);

/// Walks framed records in a buffer. `next` yields payloads until the
/// buffer ends; afterwards `clean()` tells whether the walk stopped at a
/// record boundary or on a torn/corrupt tail, and `offset()` is the byte
/// offset of the first bad (or one-past-the-last good) byte — the
/// truncation point for tail-drop recovery.
class RecordReader {
public:
  explicit RecordReader(std::string_view Buffer) : Buffer(Buffer) {}

  /// Advances to the next record. Returns false at the end of the valid
  /// prefix (clean or torn — check clean()).
  bool next(std::string_view &Payload);

  bool clean() const { return Clean; }
  size_t offset() const { return Offset; }

private:
  std::string_view Buffer;
  size_t Offset = 0;
  bool Clean = true;
};

} // namespace framing
} // namespace pec

#endif // PEC_SUPPORT_FRAMING_H
