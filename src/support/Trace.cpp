//===- Trace.cpp - Causal trace contexts and the run journal --------------===//

#include "support/Trace.h"

#include "support/Escape.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

using namespace pec;
using namespace pec::trace;

namespace {

using Clock = std::chrono::steady_clock;

/// Journal sink. One mutex serializes whole-line writes, so readers never
/// see interleaved or torn lines; spans format their line outside the lock
/// and hold it only for the fwrite.
struct Journal {
  std::mutex Mutex;
  std::FILE *File = nullptr;
  Clock::time_point Epoch;
};

Journal &journal() {
  static Journal J;
  return J;
}

std::atomic<bool> EnabledFlag{false};

/// Ids are process-global and strictly increasing, for traces and spans
/// alike. A span's parent is always allocated before it, so parent id <
/// child id — the timeline validator exploits this to check acyclicity
/// with a single comparison per edge.
std::atomic<uint64_t> NextId{1};

thread_local Context CurrentContext;

/// Journal tids are small and dense like telemetry tids, but allocated
/// independently (the layers can be enabled separately).
std::atomic<uint32_t> NextTid{1};
thread_local uint32_t LocalTid = 0;

uint32_t localTid() {
  if (LocalTid == 0)
    LocalTid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return LocalTid;
}

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            journal().Epoch)
          .count());
}

void writeLine(const std::string &Line) {
  Journal &J = journal();
  std::lock_guard<std::mutex> Lock(J.Mutex);
  if (!J.File)
    return;
  std::fwrite(Line.data(), 1, Line.size(), J.File);
  std::fputc('\n', J.File);
}

void appendAttr(std::string &Out, const char *Key, const std::string &Value) {
  Out += ",\"";
  Out += Key;
  Out += "\":\"";
  Out += escapeJson(Value);
  Out += '"';
}

} // namespace

//===----------------------------------------------------------------------===//
// Journal lifecycle
//===----------------------------------------------------------------------===//

bool trace::enabled() { return EnabledFlag.load(std::memory_order_relaxed); }

bool trace::journalOpen(const std::string &Path) {
  Journal &J = journal();
  std::lock_guard<std::mutex> Lock(J.Mutex);
  if (J.File) {
    std::fclose(J.File);
    J.File = nullptr;
  }
  J.File = std::fopen(Path.c_str(), "w");
  if (!J.File)
    return false;
  J.Epoch = Clock::now();
  std::string Header = "{\"schema\":\"pec-journal-v1\",\"start_us\":0}";
  std::fwrite(Header.data(), 1, Header.size(), J.File);
  std::fputc('\n', J.File);
  EnabledFlag.store(true, std::memory_order_relaxed);
  return true;
}

void trace::journalClose() {
  EnabledFlag.store(false, std::memory_order_relaxed);
  Journal &J = journal();
  std::lock_guard<std::mutex> Lock(J.Mutex);
  if (J.File) {
    std::fclose(J.File);
    J.File = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Contexts
//===----------------------------------------------------------------------===//

Context trace::current() { return CurrentContext; }

Adopt::Adopt(const Context &C) : Saved(CurrentContext) { CurrentContext = C; }

Adopt::~Adopt() { CurrentContext = Saved; }

uint64_t trace::freshId() {
  return NextId.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Spans and instants
//===----------------------------------------------------------------------===//

Span::Span(const char *Name) {
  if (!enabled())
    return;
  Saved = CurrentContext;
  Id = NextId.fetch_add(1, std::memory_order_relaxed);
  uint64_t Trace = Saved.TraceId ? Saved.TraceId : Id;
  CurrentContext = {Trace, Id};

  std::string Line = "{\"ev\":\"b\",\"ts\":";
  Line += std::to_string(nowMicros());
  Line += ",\"trace\":";
  Line += std::to_string(Trace);
  Line += ",\"span\":";
  Line += std::to_string(Id);
  Line += ",\"parent\":";
  Line += std::to_string(Saved.SpanId);
  Line += ",\"tid\":";
  Line += std::to_string(localTid());
  Line += ",\"name\":\"";
  Line += escapeJson(Name);
  Line += "\"}";
  writeLine(Line);
}

Span::~Span() { end(); }

void Span::attr(const char *Key, const std::string &Value) {
  if (Id == 0)
    return;
  appendAttr(EndAttrs, Key, Value);
}

void Span::attr(const char *Key, uint64_t Value) {
  attr(Key, std::to_string(Value));
}

void Span::end() {
  if (Id == 0)
    return;
  std::string Line = "{\"ev\":\"e\",\"ts\":";
  Line += std::to_string(nowMicros());
  Line += ",\"span\":";
  Line += std::to_string(Id);
  Line += EndAttrs;
  Line += '}';
  writeLine(Line);
  CurrentContext = Saved;
  Id = 0;
}

void trace::instant(const char *Name, const char *Key,
                    const std::string &Value) {
  if (!enabled())
    return;
  std::string Line = "{\"ev\":\"i\",\"ts\":";
  Line += std::to_string(nowMicros());
  Line += ",\"span\":";
  Line += std::to_string(CurrentContext.SpanId);
  Line += ",\"tid\":";
  Line += std::to_string(localTid());
  Line += ",\"name\":\"";
  Line += escapeJson(Name);
  Line += '"';
  if (Key && *Key)
    appendAttr(Line, Key, Value);
  Line += '}';
  writeLine(Line);
}
