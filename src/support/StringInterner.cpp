//===- StringInterner.cpp -------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

using namespace pec;

namespace {
/// Storage for the global interner. A deque keeps string storage stable so
/// string_views into it never dangle.
///
/// Thread safety (docs/PARALLELISM.md): the parallel prover interns
/// symbols from every worker thread, so the map is guarded by a
/// shared_mutex — lookups (the common case once the rule file is parsed)
/// take the shared lock, insertion retakes it exclusively. Existing
/// entries are never mutated, so a Symbol obtained under any lock stays
/// valid forever.
struct InternerState {
  std::shared_mutex Mutex;
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, uint32_t> Ids;
};

InternerState &state() {
  static InternerState S;
  return S;
}
} // namespace

Symbol Symbol::get(std::string_view Name) {
  assert(!Name.empty() && "cannot intern the empty string");
  InternerState &S = state();
  {
    std::shared_lock<std::shared_mutex> Lock(S.Mutex);
    auto It = S.Ids.find(Name);
    if (It != S.Ids.end())
      return Symbol(It->second);
  }
  std::unique_lock<std::shared_mutex> Lock(S.Mutex);
  // Re-check: another thread may have interned Name between the locks.
  auto It = S.Ids.find(Name);
  if (It != S.Ids.end())
    return Symbol(It->second);
  S.Storage.emplace_back(Name);
  uint32_t Id = static_cast<uint32_t>(S.Storage.size()); // Ids start at 1.
  S.Ids.emplace(S.Storage.back(), Id);
  return Symbol(Id);
}

std::string_view Symbol::str() const {
  if (Id == 0)
    return "";
  InternerState &S = state();
  std::shared_lock<std::shared_mutex> Lock(S.Mutex);
  return S.Storage[Id - 1];
}
