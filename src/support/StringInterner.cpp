//===- StringInterner.cpp -------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace pec;

namespace {
/// Storage for the global interner. A deque keeps string storage stable so
/// string_views into it never dangle.
struct InternerState {
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, uint32_t> Ids;
};

InternerState &state() {
  static InternerState S;
  return S;
}
} // namespace

Symbol Symbol::get(std::string_view Name) {
  assert(!Name.empty() && "cannot intern the empty string");
  InternerState &S = state();
  auto It = S.Ids.find(Name);
  if (It != S.Ids.end())
    return Symbol(It->second);
  S.Storage.emplace_back(Name);
  uint32_t Id = static_cast<uint32_t>(S.Storage.size()); // Ids start at 1.
  S.Ids.emplace(S.Storage.back(), Id);
  return Symbol(Id);
}

std::string_view Symbol::str() const {
  if (Id == 0)
    return "";
  return state().Storage[Id - 1];
}
