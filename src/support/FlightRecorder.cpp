//===- FlightRecorder.cpp - Always-on crash/slow-query ring buffer --------===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//

#include "support/FlightRecorder.h"

#include "support/Log.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace pec {
namespace flight {

namespace {

constexpr uint32_t RingCapacity = 2048; ///< Events kept per thread.
constexpr uint32_t MaxRings = 128;      ///< Threads that can ever record.
constexpr int MaxAutoDumps = 4;         ///< Slow-query dump cap per process.

/// One recorded event. All fields are relaxed atomics so a signal handler
/// walking the ring concurrently with a recorder sees at worst one torn
/// event (mixed fields), never undefined behavior.
struct Event {
  std::atomic<const char *> Name{nullptr};
  std::atomic<uint64_t> TimeNs{0};
  std::atomic<uint64_t> Arg{0};
  std::atomic<uint32_t> Kind{0};
  /// Active causal context at record time (0 when no --journal), so a
  /// dump can be joined against the run journal by span id.
  std::atomic<uint64_t> Trace{0};
  std::atomic<uint64_t> Span{0};
};

struct Ring {
  std::atomic<uint64_t> Next{0}; ///< Monotonic event count; slot = Next % Cap.
  Event Events[RingCapacity];
};

/// Fixed table: no allocation after startup, and the signal handler can
/// walk it without coordination.
Ring Rings[MaxRings];
std::atomic<uint32_t> NumRings{0};

thread_local Ring *LocalRing = nullptr;

Ring *localRing() {
  if (LocalRing)
    return LocalRing;
  uint32_t Slot = NumRings.fetch_add(1, std::memory_order_relaxed);
  if (Slot >= MaxRings) {
    // Out of slots: this thread records nowhere. Overwhelmingly unlikely
    // (the pool caps well below 128), and losing events beats allocating.
    NumRings.store(MaxRings, std::memory_order_relaxed);
    return nullptr;
  }
  LocalRing = &Rings[Slot];
  return LocalRing;
}

std::chrono::steady_clock::time_point processEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

/// Forces the epoch to be captured before threads start recording.
const bool EpochInitialized = (processEpoch(), true);

std::atomic<uint64_t> SlowThresholdUs{0};
std::atomic<int> AutoDumps{0};
std::atomic<bool> SuppressionWarned{false};
std::atomic<uint64_t> DumpSeq{0};

char DumpDir[512] = ".";
char LastDumpPath[640] = "";

/// write(2) the whole buffer; short writes are retried. Signal-safe.
bool writeAll(int Fd, const char *Buf, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N <= 0)
      return false;
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// snprintf into Buf and write it out. Names are literals from our own
/// code (no quotes/backslashes), so emitting them unescaped is safe.
bool writeEvent(int Fd, const Event &E, bool &First) {
  const char *Name = E.Name.load(std::memory_order_relaxed);
  if (!Name)
    return true; // Unused slot.
  static const char *const Kinds[] = {"B", "E", "I"};
  uint32_t Kind = E.Kind.load(std::memory_order_relaxed);
  if (Kind > 2)
    Kind = 2; // Torn event; keep the dump parseable.
  char Buf[512];
  int Len = snprintf(Buf, sizeof(Buf),
                     "%s\n    {\"name\":\"%s\",\"ph\":\"%s\",\"t_ns\":%" PRIu64
                     ",\"arg\":%" PRIu64 ",\"trace\":%" PRIu64
                     ",\"span\":%" PRIu64 "}",
                     First ? "" : ",", Name, Kinds[Kind],
                     E.TimeNs.load(std::memory_order_relaxed),
                     E.Arg.load(std::memory_order_relaxed),
                     E.Trace.load(std::memory_order_relaxed),
                     E.Span.load(std::memory_order_relaxed));
  First = false;
  if (Len < 0 || Len >= static_cast<int>(sizeof(Buf)))
    return false;
  return writeAll(Fd, Buf, static_cast<size_t>(Len));
}

void handleFatalSignal(int Sig) {
  static const char *const Names[] = {"signal"};
  (void)Names;
  dump("fatal-signal");
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process still dies with the original signal.
  raise(Sig);
}

} // namespace

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processEpoch())
          .count());
}

void record(EventKind Kind, const char *Name, uint64_t Arg) {
  Ring *R = localRing();
  if (!R)
    return;
  uint64_t Idx = R->Next.fetch_add(1, std::memory_order_relaxed);
  Event &E = R->Events[Idx % RingCapacity];
  trace::Context TC = trace::current();
  E.Name.store(Name, std::memory_order_relaxed);
  E.TimeNs.store(nowNs(), std::memory_order_relaxed);
  E.Arg.store(Arg, std::memory_order_relaxed);
  E.Kind.store(static_cast<uint32_t>(Kind), std::memory_order_relaxed);
  E.Trace.store(TC.TraceId, std::memory_order_relaxed);
  E.Span.store(TC.SpanId, std::memory_order_relaxed);
}

Span::Span(const char *Name) : Name(Name), StartNs(nowNs()) {
  record(EventKind::Begin, Name, 0);
}

Span::~Span() {
  record(EventKind::End, Name, (nowNs() - StartNs) / 1000);
}

void setSlowQueryThresholdUs(uint64_t Us) {
  SlowThresholdUs.store(Us, std::memory_order_relaxed);
}

uint64_t slowQueryThresholdUs() {
  return SlowThresholdUs.load(std::memory_order_relaxed);
}

void noteSlowQuery(const char *Name, uint64_t Micros) {
  instant("slow-query", Micros);
  (void)Name;
  if (AutoDumps.fetch_add(1, std::memory_order_relaxed) >= MaxAutoDumps) {
    // Not a signal context (slow-query breaches come from the query
    // accounting destructor), so counting and logging the suppression is
    // safe — and much better than the cap silently eating evidence.
    metrics::add(metrics::Counter::FlightDumpsSuppressed);
    if (!SuppressionWarned.exchange(true, std::memory_order_relaxed))
      log::warn("flight.dumps_suppressed")
          .num("cap", static_cast<uint64_t>(MaxAutoDumps))
          .num("slow_query_us", Micros);
    return;
  }
  dump("slow-query");
}

void setDumpDir(const char *Dir) {
  snprintf(DumpDir, sizeof(DumpDir), "%s", Dir && *Dir ? Dir : ".");
}

bool dump(const char *Reason) {
  char Path[640];
  uint64_t Seq = DumpSeq.fetch_add(1, std::memory_order_relaxed);
  snprintf(Path, sizeof(Path), "%s/pec-flight-%ld-%" PRIu64 ".json", DumpDir,
           static_cast<long>(getpid()), Seq);
  int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;

  bool Ok = true;
  char Head[256];
  int Len = snprintf(Head, sizeof(Head),
                     "{\n  \"reason\":\"%s\",\n  \"now_ns\":%" PRIu64
                     ",\n  \"threads\":[",
                     Reason, nowNs());
  Ok = Ok && Len > 0 && writeAll(Fd, Head, static_cast<size_t>(Len));

  uint32_t N = NumRings.load(std::memory_order_relaxed);
  if (N > MaxRings)
    N = MaxRings;
  for (uint32_t T = 0; T < N && Ok; ++T) {
    const Ring &R = Rings[T];
    Len = snprintf(Head, sizeof(Head),
                   "%s\n   {\"thread\":%" PRIu32 ",\"events\":[", T ? "," : "",
                   T);
    Ok = Ok && Len > 0 && writeAll(Fd, Head, static_cast<size_t>(Len));
    // Oldest-first: when the ring has wrapped, start at the slot Next
    // points into (the oldest surviving event).
    uint64_t Count = R.Next.load(std::memory_order_relaxed);
    uint64_t Start = Count > RingCapacity ? Count % RingCapacity : 0;
    uint64_t Used = Count > RingCapacity ? RingCapacity : Count;
    bool First = true;
    for (uint64_t I = 0; I < Used && Ok; ++I)
      Ok = writeEvent(Fd, R.Events[(Start + I) % RingCapacity], First);
    Ok = Ok && writeAll(Fd, "]}", 2);
  }
  Ok = Ok && writeAll(Fd, "]\n}\n", 4);
  ::close(Fd);
  if (Ok)
    snprintf(LastDumpPath, sizeof(LastDumpPath), "%s", Path);
  return Ok;
}

const char *lastDumpPath() { return LastDumpPath; }

void installSignalHandlers() {
  static const int Fatals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  struct sigaction Action;
  memset(&Action, 0, sizeof(Action));
  Action.sa_handler = handleFatalSignal;
  // One shot: the handler dumps, the re-raise gets default disposition.
  Action.sa_flags = SA_RESETHAND;
  sigemptyset(&Action.sa_mask);
  for (int Sig : Fatals)
    sigaction(Sig, &Action, nullptr);
}

void resetForTest() {
  uint32_t N = NumRings.load(std::memory_order_relaxed);
  if (N > MaxRings)
    N = MaxRings;
  for (uint32_t T = 0; T < N; ++T) {
    Ring &R = Rings[T];
    R.Next.store(0, std::memory_order_relaxed);
    for (Event &E : R.Events) {
      E.Name.store(nullptr, std::memory_order_relaxed);
      E.TimeNs.store(0, std::memory_order_relaxed);
      E.Arg.store(0, std::memory_order_relaxed);
      E.Kind.store(0, std::memory_order_relaxed);
      E.Trace.store(0, std::memory_order_relaxed);
      E.Span.store(0, std::memory_order_relaxed);
    }
  }
  AutoDumps.store(0, std::memory_order_relaxed);
  SuppressionWarned.store(false, std::memory_order_relaxed);
  LastDumpPath[0] = '\0';
}

} // namespace flight
} // namespace pec
