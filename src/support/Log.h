//===- Log.h - Leveled structured logging ------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec::log`: leveled, structured logging with per-rule/query key-value
/// context, selectable text or JSON output (`--log json|text`,
/// `--log-level LEVEL`). Events are built fluently and emitted on
/// destruction:
///
/// \code
///   log::Scope Rule("rule", RuleName);        // context for this thread
///   log::info("prove.start").num("jobs", 8);  // emits when the temporary
///                                             // dies at the ';'
/// \endcode
///
/// In JSON mode each event is one line on stderr:
/// `{"ts":"2026-08-08T12:00:00.123Z","level":"info","event":"prove.start",
///   "rule":"lift-inv","jobs":8}` — the shape a `pec serve` log shipper
/// will ingest. Text mode renders the same fields human-first. Events
/// below the active level cost one relaxed atomic load and build nothing.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_LOG_H
#define PEC_SUPPORT_LOG_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pec {
namespace log {

enum class Level : int { Debug = 0, Info, Warn, Error, Off };
enum class Format : int { Text = 0, Json };

void setLevel(Level L);
Level level();
/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false on junk.
bool parseLevel(const std::string &Name, Level &Out);

void setFormat(Format F);
Format format();
/// Parses "text"/"json"; returns false on junk.
bool parseFormat(const std::string &Name, Format &Out);

/// True when events at \p L would be emitted.
bool enabled(Level L);

/// A structured event under construction. Emits itself (one stderr line,
/// under a process mutex) when destroyed, provided its level is active.
/// Obtain one from debug()/info()/warn()/error(); returned by value and
/// consumed at the end of the full expression.
class Event {
public:
  Event(Level L, const char *Name);
  ~Event();
  Event(Event &&O) noexcept;
  Event(const Event &) = delete;
  Event &operator=(const Event &) = delete;
  Event &operator=(Event &&) = delete;

  Event &str(const char *Key, const std::string &Value);
  Event &num(const char *Key, int64_t Value);
  Event &num(const char *Key, uint64_t Value);
  Event &real(const char *Key, double Value);

private:
  Level L;
  const char *Name;
  bool Live; ///< False when below level or moved-from: destructor no-ops.
  std::vector<std::pair<std::string, std::string>> Fields; ///< Key, rendered.
};

inline Event debug(const char *Name) { return Event(Level::Debug, Name); }
inline Event info(const char *Name) { return Event(Level::Info, Name); }
inline Event warn(const char *Name) { return Event(Level::Warn, Name); }
inline Event error(const char *Name) { return Event(Level::Error, Name); }

/// Thread-local key-value context: every event emitted by this thread
/// while the Scope lives carries the pair. Nests (rule -> query).
class Scope {
public:
  Scope(const char *Key, const std::string &Value);
  ~Scope();
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;
};

} // namespace log
} // namespace pec

#endif // PEC_SUPPORT_LOG_H
