//===- FlightRecorder.h - Always-on crash/slow-query ring buffer -*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec::flight`: an always-on, fixed-size per-thread ring buffer of recent
/// span begin/end and instant events, dumped to `pec-flight-*.json` when a
/// fatal signal arrives or a single ATP query exceeds the `--slow-query-ms`
/// threshold. Unlike `pec::telemetry` (opt-in, unbounded, full-run trace),
/// the flight recorder answers only one question — *what were the last few
/// thousand things each thread did* — and answers it even when the process
/// is dying.
///
/// Constraints that shape the API:
///
///   * **No allocation after startup.** Rings live in a fixed static table;
///     a thread claims a slot on its first event. Event names must be
///     string literals (or otherwise immortal pointers) so the dump never
///     chases freed memory.
///   * **Signal-tolerant dump.** `dump()` uses open/write/snprintf only, so
///     the fatal-signal handler can call it. It is best-effort by nature:
///     a handler firing mid-record may see one torn event, never a torn
///     heap.
///   * Recording is a few relaxed atomic stores — cheap enough to leave on
///     under `bench_checker`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_FLIGHTRECORDER_H
#define PEC_SUPPORT_FLIGHTRECORDER_H

#include <cstdint>

namespace pec {
namespace flight {

enum class EventKind : uint32_t {
  Begin = 0, ///< Span opened.
  End = 1,   ///< Span closed (Arg = duration in microseconds).
  Instant = 2,
};

/// Records one event in the calling thread's ring. \p Name MUST be a
/// string literal (the recorder stores the pointer, forever).
void record(EventKind Kind, const char *Name, uint64_t Arg = 0);

inline void instant(const char *Name, uint64_t Arg = 0) {
  record(EventKind::Instant, Name, Arg);
}

/// RAII Begin/End pair. Durations are stamped on the End event.
class Span {
public:
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  uint64_t StartNs;
};

/// Nanoseconds since the recorder's (process-start) epoch.
uint64_t nowNs();

//===----------------------------------------------------------------------===//
// Slow-query auto-dump
//===----------------------------------------------------------------------===//

/// Threshold in microseconds above which a single ATP query triggers a
/// flight dump (0 disables; the `--slow-query-ms` flag sets this).
void setSlowQueryThresholdUs(uint64_t Us);
uint64_t slowQueryThresholdUs();

/// Called by the ATP when a query ran for \p Micros >= the threshold.
/// Dumps the rings (capped at a few dumps per process so a systematically
/// slow suite does not spray files).
void noteSlowQuery(const char *Name, uint64_t Micros);

//===----------------------------------------------------------------------===//
// Dumping
//===----------------------------------------------------------------------===//

/// Directory for dump files (default "."). The path is copied into a
/// fixed buffer at call time; truncated if longer than ~500 bytes.
void setDumpDir(const char *Dir);

/// Writes every thread's ring to `<dir>/pec-flight-<pid>-<seq>.json` with
/// the given reason string (a literal). Returns true when the file was
/// written. Safe to call from a signal handler.
bool dump(const char *Reason);

/// Path of the most recent successful dump ("" when none). Test hook.
const char *lastDumpPath();

/// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that dump the
/// rings and re-raise with default disposition.
void installSignalHandlers();

/// Clears every ring, the dump counters, and lastDumpPath. Test-only.
void resetForTest();

} // namespace flight
} // namespace pec

#endif // PEC_SUPPORT_FLIGHTRECORDER_H
