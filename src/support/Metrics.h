//===- Metrics.h - Always-on counters, gauges, and histograms ---*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec::metrics`: a process-wide registry of counters, gauges, and
/// log-linear latency/size histograms, cheap enough to leave **always on**
/// (docs/OBSERVABILITY.md). This is the aggregate-statistics complement to
/// `pec::telemetry`, which stays the opt-in *tracing* layer: telemetry
/// answers "what did this run do, event by event", metrics answer "what do
/// runs look like in the tail" — p50/p90/p99 query latencies, wave widths,
/// conflict-size distributions — the numbers a long-lived `pec serve`
/// daemon will be scraped for.
///
/// Design:
///
///   * The metric set is a closed compile-time enum (Counter / Gauge /
///     Hist). No string lookups, no registration races, no allocation on
///     the record path.
///   * Recording is **per-thread sharded**: every thread owns a shard of
///     relaxed atomics, created on its first record and registered with
///     the process registry. The fast path is one thread-local load plus
///     a handful of relaxed atomic adds — safe under TSan and within
///     noise of the uninstrumented pipeline (`bench_checker` is the
///     acceptance gate).
///   * `snapshot()` merges all shards. Sums of relaxed adds commute, so a
///     snapshot taken at a quiescent point is deterministic regardless of
///     which thread recorded what.
///   * Histograms are **log-linear**: 8 linear sub-buckets per power of
///     two (exact below 16, relative error <= 12.5% above), 264 buckets
///     covering [0, 2^35). Percentiles are read from bucket upper bounds,
///     so a reported pNN is an upper bound on the true pNN within one
///     bucket's width; `Max` is exact.
///
/// Serialization: `renderPrometheus` emits the text exposition format
/// (counters as `_total`, histograms as cumulative `_bucket{le=...}` +
/// `_sum`/`_count`), and the `pec-report-v4` `metrics` section embeds
/// percentile summaries plus sparse bucket arrays (Report.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_METRICS_H
#define PEC_SUPPORT_METRICS_H

#include "support/Telemetry.h"

#include <array>
#include <cstdint>
#include <string>

namespace pec {
namespace metrics {

//===----------------------------------------------------------------------===//
// The closed metric set
//===----------------------------------------------------------------------===//

/// Monotonic counters (Prometheus `_total`).
enum class Counter : unsigned {
  AtpCacheHits,     ///< Queries answered from the shared AtpCache.
  AtpCacheMisses,   ///< Queries solved locally and published.
  AtpCacheBypasses, ///< Model-wanting queries the cache could not serve.
  AtpCacheDiskHits, ///< Subset of hits served by persisted-store entries.
  SlowQueries,      ///< Queries past the --slow-query-ms threshold.
  FlightDumpsSuppressed, ///< Slow-query dumps dropped by the per-process cap.
  AtpSatClosed,     ///< Queries closed by the equality-saturation stage.
};
constexpr size_t NumCounters = 7;

/// Instantaneous values, additive across shards (a thread adds on entry
/// and subtracts on exit, so the shard sum is the current level).
enum class Gauge : unsigned {
  PoolQueueDepth, ///< Tasks submitted to a ThreadPool, not yet started.
  PoolWorkers,    ///< Live ThreadPool worker threads.
};
constexpr size_t NumGauges = 2;

/// Log-linear histograms. The first NumPurposes entries are the
/// per-purpose ATP query latency slices, indexed in telemetry::Purpose
/// order (use atpQueryHist to map).
enum class Hist : unsigned {
  AtpQueryUsOther = 0,       ///< atp_query_us{purpose="other"}
  AtpQueryUsPathPruning,     ///< atp_query_us{purpose="path-pruning"}
  AtpQueryUsObligation,      ///< atp_query_us{purpose="obligation"}
  AtpQueryUsPermuteCondition,///< atp_query_us{purpose="permute-condition"}
  AtpQueryUsStrengthening,   ///< atp_query_us{purpose="strengthening"}
  AtpQueryUsMinimize,        ///< atp_query_us{purpose="minimize"}
  RuleProveUs,               ///< End-to-end proveRule wall-clock.
  WaveWidth,                 ///< Checker obligation-wave constraint count.
  CacheWaitUs,               ///< Single-flight blocking time in AtpCache.
  PoolTaskUs,                ///< ThreadPool task execution latency.
  SatConflictSize,           ///< Learnt clause length per CDCL conflict.
  TheoryConflictSize,        ///< Theory conflict core literal count.
};
constexpr size_t NumHists = 12;

/// The latency histogram for queries tagged with \p P.
inline Hist atpQueryHist(telemetry::Purpose P) {
  return static_cast<Hist>(static_cast<unsigned>(P));
}

/// Stable snake_case name (Prometheus family name without the pec_
/// prefix, and the key used in the pec-report-v4 metrics section).
const char *counterName(Counter C);
const char *gaugeName(Gauge G);
const char *histName(Hist H);
/// Label rendered on the Prometheus series ("purpose=\"obligation\"") or
/// nullptr for unlabeled families. Families sharing a histName differ
/// only in this label.
const char *histLabel(Hist H);

//===----------------------------------------------------------------------===//
// Log-linear bucket geometry
//===----------------------------------------------------------------------===//

constexpr unsigned SubBucketLog2 = 3; ///< 8 linear sub-buckets per octave.
constexpr unsigned SubBuckets = 1u << SubBucketLog2;
constexpr unsigned MaxOctave = 32; ///< Values clamp below 2^(3+32).
constexpr unsigned NumBuckets = SubBuckets + MaxOctave * SubBuckets;

/// The bucket holding \p V. Exact (bucket == value) below 2*SubBuckets;
/// above, values share a bucket with <= 1/SubBuckets relative width.
unsigned bucketIndex(uint64_t V);
/// Smallest / largest value mapping to bucket \p Idx.
uint64_t bucketLowerBound(unsigned Idx);
uint64_t bucketUpperBound(unsigned Idx);

//===----------------------------------------------------------------------===//
// Recording (lock-free fast path)
//===----------------------------------------------------------------------===//

void add(Counter C, uint64_t Delta = 1);
void gaugeAdd(Gauge G, int64_t Delta);
void record(Hist H, uint64_t Value);

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

/// Merged view of one histogram. Also usable standalone as a scalar
/// single-threaded histogram (the unit tests' reference implementation
/// records straight into one of these).
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
  std::array<uint64_t, NumBuckets> Buckets{};

  /// Single-threaded record (for building reference snapshots).
  void record(uint64_t V);

  /// The smallest bucket upper bound B such that at least ceil(P * Count)
  /// recorded values are <= B; 0 when empty. P in [0, 1].
  uint64_t percentile(double P) const;

  bool operator==(const HistogramSnapshot &O) const {
    return Count == O.Count && Sum == O.Sum && Max == O.Max &&
           Buckets == O.Buckets;
  }
};

/// Merged view of the whole registry.
struct Snapshot {
  std::array<uint64_t, NumCounters> Counters{};
  std::array<int64_t, NumGauges> Gauges{};
  std::array<HistogramSnapshot, NumHists> Hists{};

  const HistogramSnapshot &hist(Hist H) const {
    return Hists[static_cast<size_t>(H)];
  }
  uint64_t counter(Counter C) const {
    return Counters[static_cast<size_t>(C)];
  }
  int64_t gauge(Gauge G) const { return Gauges[static_cast<size_t>(G)]; }
};

/// Merges every thread shard. Deterministic once recording threads have
/// quiesced (sums commute).
Snapshot snapshot();

/// Zeroes every shard (counters, gauges, histograms). Test-only: racing
/// recorders may survive into the next epoch.
void resetForTest();

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

/// Renders \p S in the Prometheus text format (the `--metrics-out FILE`
/// payload): `# TYPE` headers, `pec_`-prefixed families, histograms as
/// cumulative `_bucket{le="..."}` series (sparse: only buckets whose
/// count changed, plus `+Inf`) with `_sum` and `_count`.
std::string renderPrometheus(const Snapshot &S);

} // namespace metrics
} // namespace pec

#endif // PEC_SUPPORT_METRICS_H
