//===- Json.h - Minimal JSON value model and parser -------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser used by the telemetry tests and
/// the `check-bench-schema` tool to validate the machine-readable reports
/// the pipeline emits. Zero dependencies by design (the same constraint as
/// the rest of `pec::telemetry`); not a general-purpose library — numbers
/// are held as doubles and the parser favors clarity over speed.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SUPPORT_JSON_H
#define PEC_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pec {
namespace json {

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value {
public:
  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return B; }
  double numberValue() const { return N; }
  const std::string &stringValue() const { return S; }
  const std::vector<ValuePtr> &array() const { return A; }
  const std::map<std::string, ValuePtr> &object() const { return O; }

  /// Object member lookup; nullptr when absent or not an object.
  ValuePtr get(const std::string &Key) const {
    auto It = O.find(Key);
    return It == O.end() ? nullptr : It->second;
  }

  static ValuePtr mkNull();
  static ValuePtr mkBool(bool V);
  static ValuePtr mkNumber(double V);
  static ValuePtr mkString(std::string V);
  static ValuePtr mkArray(std::vector<ValuePtr> V);
  static ValuePtr mkObject(std::map<std::string, ValuePtr> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<ValuePtr> A;
  std::map<std::string, ValuePtr> O;
};

/// Parses \p Text. On failure returns nullptr and, if \p Error is given,
/// stores a one-line description with the byte offset.
ValuePtr parse(const std::string &Text, std::string *Error = nullptr);

} // namespace json
} // namespace pec

#endif // PEC_SUPPORT_JSON_H
