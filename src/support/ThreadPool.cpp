//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <chrono>

using namespace pec;

namespace {
/// Which pool (if any) the current thread belongs to, and its worker index.
/// Lets submit() push onto the calling worker's own deque and lets external
/// threads (the CLI main thread) be told apart from workers.
thread_local const ThreadPool *TlsPool = nullptr;
thread_local int TlsIndex = -1;
} // namespace

ThreadPool::ThreadPool(unsigned Threads)
    : NumWorkers(Threads), Deques(Threads > 0 ? Threads : 1) {
  metrics::gaugeAdd(metrics::Gauge::PoolWorkers,
                    static_cast<int64_t>(Threads));
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    ShuttingDown.store(true, std::memory_order_release);
  }
  SleepCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  metrics::gaugeAdd(metrics::Gauge::PoolWorkers,
                    -static_cast<int64_t>(NumWorkers));
}

unsigned ThreadPool::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

int ThreadPool::selfIndex() const {
  return TlsPool == this ? TlsIndex : -1;
}

void ThreadPool::submit(std::function<void()> Task) {
  // Causal propagation: capture the submitter's trace context and
  // re-install it around the task body, so spans the task opens record
  // the submitting span as parent even when a different worker steals the
  // task. A flow-event pair keyed by a fresh id makes the same causal
  // hop visible in the Chrome trace (Perfetto draws the arrow).
  if (trace::enabled() || telemetry::enabled()) {
    trace::Context Ctx = trace::current();
    uint64_t FlowId = telemetry::enabled() ? trace::freshId() : 0;
    if (FlowId)
      telemetry::flowBegin("pool.task", FlowId);
    Task = [Ctx, FlowId, T = std::move(Task)] {
      trace::Adopt Adopted(Ctx);
      telemetry::Span PoolSpan("pool.task", "pool");
      if (FlowId)
        telemetry::flowEnd("pool.task", FlowId);
      T();
    };
  }
  int Self = selfIndex();
  size_t Target = Self >= 0 ? static_cast<size_t>(Self)
                            : NextExternalDeque.fetch_add(
                                  1, std::memory_order_relaxed) %
                                  Deques.size();
  {
    std::lock_guard<std::mutex> Lock(Deques[Target].Mutex);
    Deques[Target].Tasks.push_back(std::move(Task));
  }
  metrics::gaugeAdd(metrics::Gauge::PoolQueueDepth, 1);
  // Publish-then-notify under SleepMutex so a worker that just found the
  // deques empty cannot sleep through this submission.
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
  }
  SleepCv.notify_one();
}

bool ThreadPool::tryRunOneTask() {
  std::function<void()> Task;
  int Self = selfIndex();
  // Own deque first (back = most recently pushed, keeps nested waves hot).
  if (Self >= 0) {
    WorkerDeque &D = Deques[Self];
    std::lock_guard<std::mutex> Lock(D.Mutex);
    if (!D.Tasks.empty()) {
      Task = std::move(D.Tasks.back());
      D.Tasks.pop_back();
    }
  }
  // Steal from the front of the other deques (oldest task: likely the
  // largest remaining unit of work).
  if (!Task) {
    size_t Start = Self >= 0 ? static_cast<size_t>(Self) + 1 : 0;
    for (size_t I = 0; I < Deques.size() && !Task; ++I) {
      WorkerDeque &D = Deques[(Start + I) % Deques.size()];
      std::lock_guard<std::mutex> Lock(D.Mutex);
      if (!D.Tasks.empty()) {
        Task = std::move(D.Tasks.front());
        D.Tasks.pop_front();
      }
    }
  }
  if (!Task)
    return false;
  metrics::gaugeAdd(metrics::Gauge::PoolQueueDepth, -1);
  auto Start = std::chrono::steady_clock::now();
  Task();
  metrics::record(metrics::Hist::PoolTaskUs,
                  static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - Start)
                          .count()));
  return true;
}

void ThreadPool::workerLoop(unsigned Index) {
  TlsPool = this;
  TlsIndex = static_cast<int>(Index);
  while (true) {
    if (tryRunOneTask())
      continue;
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (ShuttingDown.load(std::memory_order_acquire))
      return;
    // Timed wait: a cheap backstop against the submit/sleep race; the
    // common case is an explicit notify from submit().
    SleepCv.wait_for(Lock, std::chrono::milliseconds(50));
  }
}

void TaskGroup::spawn(std::function<void()> Task) {
  Pending.fetch_add(1, std::memory_order_acq_rel);
  Pool.submit([this, T = std::move(Task)] {
    T();
    // Decrement inside DoneMutex: wait()'s final lock acquisition then
    // guarantees the group cannot be destroyed while we are in here.
    std::lock_guard<std::mutex> Lock(DoneMutex);
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      DoneCv.notify_all();
  });
}

void TaskGroup::wait() {
  while (Pending.load(std::memory_order_acquire) != 0) {
    // Help: run pool tasks (ours or anyone's) instead of blocking. This is
    // what makes nested TaskGroups safe — a rule-level task waiting on its
    // obligation wave executes the wave itself if no worker is free.
    if (Pool.tryRunOneTask())
      continue;
    // Nothing runnable anywhere; our remaining tasks are executing on
    // other threads. Block until the last one signals.
    std::unique_lock<std::mutex> Lock(DoneMutex);
    DoneCv.wait_for(Lock, std::chrono::milliseconds(50), [this] {
      return Pending.load(std::memory_order_acquire) == 0;
    });
  }
  // Fence: the last completer decremented Pending while holding DoneMutex;
  // taking it once here ensures that completer has left the critical
  // section before the group can be destroyed.
  std::lock_guard<std::mutex> Lock(DoneMutex);
}
