//===- Framing.cpp - CRC-framed binary records ----------------------------------===//

#include "support/Framing.h"

#include <array>
#include <cstring>

using namespace pec;

namespace {

/// The CRC-32 lookup table, built once (reflected 0xEDB88320 polynomial).
std::array<uint32_t, 256> buildCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t framing::crc32(const void *Data, size_t Len) {
  static const std::array<uint32_t, 256> Table = buildCrcTable();
  uint32_t C = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

void framing::appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void framing::appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

bool framing::readU32(std::string_view In, size_t &Offset, uint32_t &V) {
  if (Offset + 4 > In.size())
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(In[Offset + I]))
         << (8 * I);
  Offset += 4;
  return true;
}

bool framing::readU64(std::string_view In, size_t &Offset, uint64_t &V) {
  if (Offset + 8 > In.size())
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(In[Offset + I]))
         << (8 * I);
  Offset += 8;
  return true;
}

void framing::appendRecord(std::string &Out, std::string_view Payload) {
  appendU32(Out, static_cast<uint32_t>(Payload.size()));
  appendU32(Out, crc32(Payload.data(), Payload.size()));
  Out.append(Payload.data(), Payload.size());
}

bool framing::RecordReader::next(std::string_view &Payload) {
  if (Offset == Buffer.size())
    return false; // Clean end: stopped exactly on a boundary.
  size_t At = Offset;
  uint32_t Len = 0, Crc = 0;
  if (!readU32(Buffer, At, Len) || !readU32(Buffer, At, Crc) ||
      At + Len > Buffer.size()) {
    Clean = false; // Torn header or truncated payload.
    return false;
  }
  std::string_view Body = Buffer.substr(At, Len);
  if (crc32(Body.data(), Body.size()) != Crc) {
    Clean = false; // Bit rot or a torn overwrite.
    return false;
  }
  Offset = At + Len;
  Payload = Body;
  return true;
}
