//===- Cfg.h - Control flow graphs ------------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control flow graphs in the paper's style (Sec. 3): nodes are program
/// locations, edges are labeled with *atomic* statements (assignments,
/// `assume`s, statement meta-variables, skips). Branches become `assume`
/// edges: `if (c)` produces an `assume(c)` edge into the then-branch and an
/// `assume(!c)` edge into the else-branch, and similarly for loops (Fig. 7).
///
/// Locations are 0-based per CFG; the PEC layer pairs locations of the
/// original and transformed CFGs explicitly, which realizes the paper's
/// "disjoint location spaces" assumption.
///
/// Statement labels (`L1:`) map to the location at which the labeled
/// statement begins; side conditions attach fact meanings there.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_CFG_CFG_H
#define PEC_CFG_CFG_H

#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pec {

using Location = uint32_t;
inline constexpr Location InvalidLocation = ~0u;

/// One CFG edge: an atomic statement from `From` to `To`.
struct CfgEdge {
  Location From = InvalidLocation;
  Location To = InvalidLocation;
  StmtPtr Atom; ///< Assign / Assume / MetaStmt / Skip.
};

/// A control flow graph with a unique entry and exit.
class Cfg {
public:
  Location entry() const { return Entry; }
  Location exit() const { return Exit; }
  uint32_t numLocations() const { return NumLocations; }
  const std::vector<CfgEdge> &edges() const { return Edges; }
  const CfgEdge &edge(uint32_t Index) const { return Edges[Index]; }

  /// Outgoing edge indices of \p L.
  const std::vector<uint32_t> &successors(Location L) const {
    return Succ[L];
  }
  /// Incoming edge indices of \p L.
  const std::vector<uint32_t> &predecessors(Location L) const {
    return Pred[L];
  }

  /// The location a `L:`-labeled statement begins at, or InvalidLocation.
  Location locationOfLabel(Symbol Label) const;
  const std::map<Symbol, Location> &labels() const { return Labels; }

  /// Locations immediately preceding a statement meta-variable edge — the
  /// set L_S of the paper's Correlate module.
  std::vector<Location> metaStmtLocations() const;

  /// Locations with an outgoing assume edge — the set L_A.
  std::vector<Location> assumeLocations() const;

  /// Renders the graph for debugging.
  std::string str() const;

  /// Builds the CFG of \p Program (`for` loops are lowered first).
  static Cfg build(const StmtPtr &Program);

private:
  Location Entry = InvalidLocation;
  Location Exit = InvalidLocation;
  uint32_t NumLocations = 0;
  std::vector<CfgEdge> Edges;
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<std::vector<uint32_t>> Pred;
  std::map<Symbol, Location> Labels;

  friend class CfgBuilder;
};

/// A path: a sequence of edge indices through one CFG.
using CfgPath = std::vector<uint32_t>;

/// Enumerates all paths from \p From ending at a location in \p IsStop
/// (indexed by location) with at most \p MaxIntermediateStops stop
/// locations strictly inside the path — with 0 this is the paper's `->R`
/// successor relation (Sec. 3); larger values produce the multi-segment
/// "catch-up" paths the checker offers as stuttering responses. The empty
/// path is not produced. Returns false if enumeration exceeds \p MaxPaths
/// paths or a path exceeds \p MaxLen edges (which means some loop is not
/// cut by a stop location).
bool enumeratePaths(const Cfg &G, Location From,
                    const std::vector<char> &IsStop,
                    std::vector<CfgPath> &Out, size_t MaxPaths = 4096,
                    size_t MaxLen = 256, size_t MaxIntermediateStops = 0);

} // namespace pec

#endif // PEC_CFG_CFG_H
