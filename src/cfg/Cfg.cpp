//===- Cfg.cpp - CFG construction and path enumeration -------------------------===//

#include "cfg/Cfg.h"

#include "lang/AstOps.h"
#include "lang/Printer.h"

#include <sstream>

using namespace pec;

namespace pec {

/// Builds a Cfg from a (for-lowered) statement tree.
class CfgBuilder {
public:
  Cfg run(const StmtPtr &Program) {
    // The entry gets a dedicated location with a skip edge into the program:
    // if the program starts with a loop, the loop head must not coincide
    // with the entry (the entry is always a stop location for the checker's
    // path enumeration, and a stop inside a loop would misalign segments).
    Location Entry = newLocation();
    Location Start = newLocation();
    addEdge(Entry, Start, Stmt::mkSkip());
    Location Exit = lower(Program, Start);
    G.Entry = Entry;
    G.Exit = Exit;
    G.NumLocations = NextLocation;
    G.Succ.resize(NextLocation);
    G.Pred.resize(NextLocation);
    for (uint32_t I = 0; I < G.Edges.size(); ++I) {
      G.Succ[G.Edges[I].From].push_back(I);
      G.Pred[G.Edges[I].To].push_back(I);
    }
    return std::move(G);
  }

private:
  Location newLocation() { return NextLocation++; }

  void addEdge(Location From, Location To, StmtPtr Atom) {
    G.Edges.push_back(CfgEdge{From, To, std::move(Atom)});
  }

  void noteLabel(Symbol Label, Location L) {
    if (Label.empty())
      return;
    if (G.Labels.count(Label))
      reportFatalError("duplicate label '" + std::string(Label.str()) + "'");
    G.Labels[Label] = L;
  }

  /// Lowers \p S starting at location \p At; returns the location reached
  /// after S.
  Location lower(const StmtPtr &S, Location At) {
    noteLabel(S->label(), At);
    switch (S->kind()) {
    case StmtKind::Skip:
      return At; // No edge: skip is a no-op and would only pad paths.
    case StmtKind::Assign:
    case StmtKind::Assume:
    case StmtKind::MetaStmt: {
      Location Next = newLocation();
      addEdge(At, Next, S);
      return Next;
    }
    case StmtKind::Seq: {
      Location Cur = At;
      for (const StmtPtr &C : S->stmts())
        Cur = lower(C, Cur);
      return Cur;
    }
    case StmtKind::If: {
      Location ThenStart = newLocation();
      addEdge(At, ThenStart, Stmt::mkAssume(S->cond()));
      Location ThenEnd = lower(S->thenStmt(), ThenStart);
      Location ElseStart = newLocation();
      addEdge(At, ElseStart,
              Stmt::mkAssume(Expr::mkUnary(UnOp::Not, S->cond())));
      Location ElseEnd = ElseStart;
      if (S->elseStmt())
        ElseEnd = lower(S->elseStmt(), ElseStart);
      Location Join = newLocation();
      addEdge(ThenEnd, Join, Stmt::mkSkip());
      addEdge(ElseEnd, Join, Stmt::mkSkip());
      return Join;
    }
    case StmtKind::While: {
      // `At` is the loop head.
      Location BodyStart = newLocation();
      addEdge(At, BodyStart, Stmt::mkAssume(S->cond()));
      Location BodyEnd = lower(S->body(), BodyStart);
      addEdge(BodyEnd, At, Stmt::mkSkip()); // Back edge.
      Location ExitLoc = newLocation();
      addEdge(At, ExitLoc,
              Stmt::mkAssume(Expr::mkUnary(UnOp::Not, S->cond())));
      return ExitLoc;
    }
    case StmtKind::For:
      reportFatalError("for-loops must be lowered before CFG construction");
    }
    return At;
  }

  Cfg G;
  uint32_t NextLocation = 0;
};

} // namespace pec

Cfg Cfg::build(const StmtPtr &Program) {
  return CfgBuilder().run(lowerFors(Program));
}

Location Cfg::locationOfLabel(Symbol Label) const {
  auto It = Labels.find(Label);
  return It == Labels.end() ? InvalidLocation : It->second;
}

std::vector<Location> Cfg::metaStmtLocations() const {
  std::vector<char> Seen(NumLocations, 0);
  std::vector<Location> Out;
  for (const CfgEdge &E : Edges)
    if (E.Atom->kind() == StmtKind::MetaStmt && !Seen[E.From]) {
      Seen[E.From] = 1;
      Out.push_back(E.From);
    }
  return Out;
}

std::vector<Location> Cfg::assumeLocations() const {
  std::vector<char> Seen(NumLocations, 0);
  std::vector<Location> Out;
  for (const CfgEdge &E : Edges)
    if (E.Atom->kind() == StmtKind::Assume && !Seen[E.From]) {
      Seen[E.From] = 1;
      Out.push_back(E.From);
    }
  return Out;
}

std::string Cfg::str() const {
  std::ostringstream OS;
  OS << "cfg: entry=" << Entry << " exit=" << Exit << "\n";
  for (const CfgEdge &E : Edges) {
    std::string Atom = printStmt(E.Atom);
    if (!Atom.empty() && Atom.back() == '\n')
      Atom.pop_back();
    OS << "  " << E.From << " -> " << E.To << "  [" << Atom << "]\n";
  }
  for (const auto &[Label, L] : Labels)
    OS << "  label " << Label.str() << " at " << L << "\n";
  return OS.str();
}

namespace {

bool enumerateRec(const Cfg &G, Location Cur, const std::vector<char> &IsStop,
                  CfgPath &Prefix, std::vector<CfgPath> &Out, size_t MaxPaths,
                  size_t MaxLen, size_t StopsLeft) {
  if (!Prefix.empty() && IsStop[Cur]) {
    if (Out.size() >= MaxPaths)
      return false;
    Out.push_back(Prefix);
    if (StopsLeft == 0)
      return true;
    --StopsLeft; // Continue through the stop for catch-up paths.
  }
  if (Prefix.size() >= MaxLen)
    return false; // A loop is not cut by any stop location.
  for (uint32_t EdgeIdx : G.successors(Cur)) {
    Prefix.push_back(EdgeIdx);
    bool Ok = enumerateRec(G, G.edge(EdgeIdx).To, IsStop, Prefix, Out,
                           MaxPaths, MaxLen, StopsLeft);
    Prefix.pop_back();
    if (!Ok)
      return false;
  }
  return true;
}

} // namespace

bool pec::enumeratePaths(const Cfg &G, Location From,
                         const std::vector<char> &IsStop,
                         std::vector<CfgPath> &Out, size_t MaxPaths,
                         size_t MaxLen, size_t MaxIntermediateStops) {
  CfgPath Prefix;
  return enumerateRec(G, From, IsStop, Prefix, Out, MaxPaths, MaxLen,
                      MaxIntermediateStops);
}
