//===- Timeline.cpp - Run-journal reconstruction and analysis -------------===//

#include "pec/Timeline.h"

#include "support/Escape.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace pec;
using namespace pec::timeline;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

uint64_t asU64(const json::ValuePtr &V) {
  return V && V->isNumber() ? static_cast<uint64_t>(V->numberValue()) : 0;
}

/// Copies every string member of \p Obj not named in \p Skip into
/// \p Attrs — attribution fields are open-ended by design.
void collectAttrs(const json::Value &Obj,
                  std::map<std::string, std::string> &Attrs,
                  std::initializer_list<const char *> Skip) {
  for (const auto &[Key, Val] : Obj.object()) {
    bool Skipped = false;
    for (const char *S : Skip)
      Skipped |= Key == S;
    if (!Skipped && Val && Val->isString())
      Attrs[Key] = Val->stringValue();
  }
}

} // namespace

bool timeline::parseJournal(const std::string &Text, Journal &Out,
                            std::string *Error) {
  Out = Journal();
  size_t LineNo = 0;
  size_t Pos = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::string JsonError;
    json::ValuePtr V = json::parse(Line, &JsonError);
    if (!V || !V->isObject())
      return fail(Error, "line " + std::to_string(LineNo) +
                             ": not a JSON object (" + JsonError + ")");
    if (!SawHeader) {
      json::ValuePtr Schema = V->get("schema");
      if (!Schema || !Schema->isString())
        return fail(Error, "line 1: missing journal schema header");
      Out.Schema = Schema->stringValue();
      if (Out.Schema != "pec-journal-v1")
        return fail(Error, "unsupported journal schema '" + Out.Schema + "'");
      SawHeader = true;
      continue;
    }
    json::ValuePtr Ev = V->get("ev");
    if (!Ev || !Ev->isString())
      return fail(Error,
                  "line " + std::to_string(LineNo) + ": missing \"ev\"");
    const std::string &Kind = Ev->stringValue();
    if (Kind == "b") {
      JournalSpan S;
      S.Id = asU64(V->get("span"));
      S.Trace = asU64(V->get("trace"));
      S.Parent = asU64(V->get("parent"));
      S.Tid = asU64(V->get("tid"));
      S.BeginUs = asU64(V->get("ts"));
      json::ValuePtr Name = V->get("name");
      S.Name = Name && Name->isString() ? Name->stringValue() : "";
      if (S.Id == 0 || S.Name.empty())
        return fail(Error, "line " + std::to_string(LineNo) +
                               ": begin event without span id or name");
      if (Out.ById.count(S.Id))
        return fail(Error, "line " + std::to_string(LineNo) +
                               ": duplicate begin for span " +
                               std::to_string(S.Id));
      collectAttrs(*V, S.Attrs,
                   {"ev", "name", "trace", "span", "parent", "tid", "ts"});
      Out.ById[S.Id] = Out.Spans.size();
      Out.Spans.push_back(std::move(S));
    } else if (Kind == "e") {
      uint64_t Id = asU64(V->get("span"));
      auto It = Out.ById.find(Id);
      if (It == Out.ById.end())
        return fail(Error, "line " + std::to_string(LineNo) +
                               ": end event for unknown span " +
                               std::to_string(Id));
      JournalSpan &S = Out.Spans[It->second];
      if (S.Ended)
        return fail(Error, "line " + std::to_string(LineNo) +
                               ": duplicate end for span " +
                               std::to_string(Id));
      S.Ended = true;
      S.EndUs = asU64(V->get("ts"));
      collectAttrs(*V, S.Attrs, {"ev", "span", "ts"});
    } else if (Kind == "i") {
      JournalInstant I;
      I.SpanId = asU64(V->get("span"));
      I.Tid = asU64(V->get("tid"));
      I.Ts = asU64(V->get("ts"));
      json::ValuePtr Name = V->get("name");
      I.Name = Name && Name->isString() ? Name->stringValue() : "";
      if (I.Name.empty())
        return fail(Error, "line " + std::to_string(LineNo) +
                               ": instant event without a name");
      collectAttrs(*V, I.Attrs, {"ev", "name", "span", "tid", "ts"});
      Out.Instants.push_back(std::move(I));
    } else {
      return fail(Error, "line " + std::to_string(LineNo) +
                             ": unknown event kind '" + Kind + "'");
    }
  }
  if (!SawHeader)
    return fail(Error, "empty journal (no schema header)");
  return true;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool timeline::validateJournal(const Journal &J, std::string *Error) {
  for (const JournalSpan &S : J.Spans) {
    std::string Tag = "span " + std::to_string(S.Id) + " (" + S.Name + ")";
    if (!S.Ended)
      return fail(Error, Tag + ": begin without a matching end");
    if (S.EndUs < S.BeginUs)
      return fail(Error, Tag + ": ends before it begins");
    if (S.Parent != 0) {
      auto It = J.ById.find(S.Parent);
      if (It == J.ById.end())
        return fail(Error, Tag + ": parent " + std::to_string(S.Parent) +
                               " does not exist");
      // Ids are allocation-ordered (support/Trace.cpp), so every edge
      // pointing at a smaller id proves the parent relation is acyclic.
      if (S.Parent >= S.Id)
        return fail(Error, Tag + ": parent id not older than the span "
                               "(causal order violated)");
      const JournalSpan &P = J.Spans[It->second];
      if (S.BeginUs < P.BeginUs || S.EndUs > P.EndUs)
        return fail(Error, Tag + ": interval not contained in parent " +
                               std::to_string(S.Parent));
      if (S.Trace != P.Trace)
        return fail(Error, Tag + ": trace id differs from its parent's");
    }
  }
  for (const JournalInstant &I : J.Instants)
    if (I.SpanId != 0 && !J.ById.count(I.SpanId))
      return fail(Error, "instant '" + I.Name + "': span " +
                             std::to_string(I.SpanId) + " does not exist");
  return true;
}

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

namespace {

uint64_t duration(const JournalSpan &S) { return S.EndUs - S.BeginUs; }

/// Attribution summary shown next to a critical-path hop.
std::string stepDetail(const JournalSpan &S) {
  auto Get = [&](const char *K) -> std::string {
    auto It = S.Attrs.find(K);
    return It == S.Attrs.end() ? std::string() : It->second;
  };
  if (S.Name == "rule")
    return Get("rule");
  if (S.Name == "wave") {
    std::string D = "#" + Get("wave");
    if (!Get("width").empty())
      D += " width " + Get("width");
    return D;
  }
  if (S.Name == "obligation") {
    std::string D = "#" + Get("obligation");
    if (Get("kind") == "strengthen-recheck")
      D += " (re-check)";
    return D;
  }
  if (S.Name == "atp.query") {
    std::string D = Get("purpose");
    if (!Get("cache").empty())
      D += " cache=" + Get("cache");
    return D;
  }
  if (S.Name == "check")
    return "attempt " + Get("attempt");
  return std::string();
}

} // namespace

TimelineAnalysis timeline::analyzeTimeline(const Journal &J) {
  TimelineAnalysis A;
  A.Spans = J.Spans.size();
  if (J.Spans.empty())
    return A;

  uint64_t MinBegin = UINT64_MAX, MaxEnd = 0;
  std::map<uint64_t, std::vector<size_t>> Children;
  std::vector<size_t> Roots;
  for (size_t I = 0; I < J.Spans.size(); ++I) {
    const JournalSpan &S = J.Spans[I];
    MinBegin = std::min(MinBegin, S.BeginUs);
    MaxEnd = std::max(MaxEnd, S.EndUs);
    if (S.Parent != 0 && J.ById.count(S.Parent))
      Children[S.Parent].push_back(I);
    else
      Roots.push_back(I);
    if (S.Name == "atp.query")
      ++A.Queries;
    if (S.Name == "run") {
      auto It = S.Attrs.find("jobs");
      if (It != S.Attrs.end())
        A.Jobs = std::strtoull(It->second.c_str(), nullptr, 10);
    }
  }
  A.WallUs = MaxEnd - MinBegin;

  // Self time, by per-thread temporal nesting. Causal parentage is the
  // wrong lens here: with a helping work-stealing pool, a thread blocked
  // in a wave's join loop executes unrelated tasks, and those causally
  // belong to *other* rules. Each thread runs one thing at a time and
  // spans are scoped, so per tid the intervals nest — a span's self time
  // is its duration minus its direct temporal children on the same tid.
  // Summed per tid this is an interval union, hence bounded by wall.
  std::vector<uint64_t> SelfUs(J.Spans.size());
  std::map<uint64_t, std::vector<size_t>> ByTid;
  for (size_t I = 0; I < J.Spans.size(); ++I)
    ByTid[J.Spans[I].Tid].push_back(I);
  A.Threads = ByTid.size();
  for (auto &[Tid, Indices] : ByTid) {
    (void)Tid;
    std::sort(Indices.begin(), Indices.end(), [&](size_t X, size_t Y) {
      if (J.Spans[X].BeginUs != J.Spans[Y].BeginUs)
        return J.Spans[X].BeginUs < J.Spans[Y].BeginUs;
      return J.Spans[X].EndUs > J.Spans[Y].EndUs; // Outer span first.
    });
    std::vector<size_t> Stack;
    for (size_t I : Indices) {
      while (!Stack.empty() &&
             J.Spans[Stack.back()].EndUs <= J.Spans[I].BeginUs)
        Stack.pop_back();
      SelfUs[I] = duration(J.Spans[I]);
      if (!Stack.empty()) {
        uint64_t &Parent = SelfUs[Stack.back()];
        Parent -= std::min(Parent, duration(J.Spans[I]));
      }
      Stack.push_back(I);
    }
  }
  for (size_t I = 0; I < J.Spans.size(); ++I)
    if (J.Spans[I].Name != "cache.wait")
      A.BusyUs += SelfUs[I];

  // Critical path over the *causal* tree: CP(s) = max(0, D(s) - sum of
  // causal child durations) + max over children CP(c). Containment
  // (validateJournal) makes CP(s) <= duration(s) inductively, so the
  // root path can never exceed wall-clock.
  std::vector<uint64_t> Exclusive(J.Spans.size());
  for (size_t I = 0; I < J.Spans.size(); ++I) {
    uint64_t ChildUs = 0;
    auto It = Children.find(J.Spans[I].Id);
    if (It != Children.end())
      for (size_t C : It->second)
        ChildUs += duration(J.Spans[C]);
    uint64_t D = duration(J.Spans[I]);
    Exclusive[I] = D > ChildUs ? D - ChildUs : 0;
  }
  std::vector<uint64_t> Cp(J.Spans.size(), 0);
  std::vector<int64_t> BestChild(J.Spans.size(), -1);
  std::function<uint64_t(size_t)> Compute = [&](size_t I) -> uint64_t {
    if (Cp[I])
      return Cp[I];
    uint64_t Best = 0;
    auto It = Children.find(J.Spans[I].Id);
    if (It != Children.end()) {
      for (size_t C : It->second) {
        uint64_t V = Compute(C);
        if (V > Best) {
          Best = V;
          BestChild[I] = static_cast<int64_t>(C);
        }
      }
    }
    Cp[I] = Exclusive[I] + Best;
    return Cp[I];
  };
  size_t BestRoot = 0;
  for (size_t R : Roots)
    if (Compute(R) > Cp[BestRoot])
      BestRoot = R;
  if (!Roots.empty()) {
    if (Cp[BestRoot] == 0)
      BestRoot = Roots.front();
    A.CriticalPathUs = Cp[BestRoot];
    for (int64_t I = static_cast<int64_t>(BestRoot); I >= 0;
         I = BestChild[I]) {
      const JournalSpan &S = J.Spans[I];
      A.CriticalPath.push_back(
          CriticalPathStep{S.Id, S.Name, stepDetail(S), Exclusive[I]});
    }
  }

  // Per-rule attribution: walk each rule span's subtree.
  for (size_t I = 0; I < J.Spans.size(); ++I) {
    const JournalSpan &Rule = J.Spans[I];
    if (Rule.Name != "rule")
      continue;
    RuleAttribution R;
    auto NameIt = Rule.Attrs.find("rule");
    R.Rule = NameIt != Rule.Attrs.end() ? NameIt->second : "?";
    R.WallUs = duration(Rule);
    R.Proved = Rule.Attrs.count("proved") && Rule.Attrs.at("proved") == "yes";
    std::vector<size_t> Stack{I};
    while (!Stack.empty()) {
      size_t Cur = Stack.back();
      Stack.pop_back();
      const JournalSpan &S = J.Spans[Cur];
      if (S.Name != "cache.wait")
        R.CpuUs += SelfUs[Cur];
      if (S.Name == "atp.query") {
        ++R.Queries;
        auto C = S.Attrs.find("cache");
        if (C != S.Attrs.end() && C->second == "hit")
          ++R.CacheHits;
        if (C != S.Attrs.end() && C->second == "miss")
          ++R.CacheMisses;
      } else if (S.Name == "wave") {
        ++R.Waves;
      } else if (S.Name == "obligation") {
        ++R.Obligations;
      }
      auto It = Children.find(S.Id);
      if (It != Children.end())
        Stack.insert(Stack.end(), It->second.begin(), It->second.end());
    }
    A.Rules.push_back(std::move(R));
  }
  std::sort(A.Rules.begin(), A.Rules.end(),
            [](const RuleAttribution &X, const RuleAttribution &Y) {
              return X.WallUs != Y.WallUs ? X.WallUs > Y.WallUs
                                          : X.Rule < Y.Rule;
            });

  // Wasted work.
  for (size_t I = 0; I < J.Spans.size(); ++I) {
    const JournalSpan &S = J.Spans[I];
    if (S.Name == "cache.wait") {
      ++A.CacheWaits;
      A.CacheWaitUs += duration(S);
    } else if (S.Name == "obligation") {
      auto K = S.Attrs.find("kind");
      if (K != S.Attrs.end() && K->second == "strengthen-recheck") {
        ++A.Rechecks;
        A.RecheckUs += duration(S);
      }
    }
  }
  for (const JournalInstant &I : J.Instants) {
    if (I.Name == "core_skip")
      ++A.CoreSkips;
    else if (I.Name == "strengthen")
      ++A.Strengthenings;
  }

  if (A.Threads > 0 && A.WallUs > 0) {
    uint64_t Capacity = A.Threads * A.WallUs;
    A.Utilization = static_cast<double>(A.BusyUs) / Capacity;
    A.IdleUs = Capacity > A.BusyUs ? Capacity - A.BusyUs : 0;
  }
  return A;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

std::string fmtMs(uint64_t Us) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.3fms", Us / 1000.0);
  return Buf;
}

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

} // namespace

std::string timeline::renderTimelineText(const TimelineAnalysis &A) {
  std::string Out;
  appendf(Out, "run timeline (pec-journal-v1)\n");
  appendf(Out, "  wall %s, %llu spans, %llu ATP queries",
          fmtMs(A.WallUs).c_str(), static_cast<unsigned long long>(A.Spans),
          static_cast<unsigned long long>(A.Queries));
  if (A.Jobs)
    appendf(Out, ", %llu jobs", static_cast<unsigned long long>(A.Jobs));
  if (A.Threads)
    appendf(Out, ", %llu threads observed",
            static_cast<unsigned long long>(A.Threads));
  Out += "\n\n";

  appendf(Out, "critical path: %s", fmtMs(A.CriticalPathUs).c_str());
  if (A.WallUs)
    appendf(Out, " (%.1f%% of wall — the floor for any --jobs)",
            100.0 * A.CriticalPathUs / A.WallUs);
  Out += "\n";
  for (const CriticalPathStep &S : A.CriticalPath) {
    appendf(Out, "  %-12s %-28s %10s\n", S.Name.c_str(), S.Detail.c_str(),
            fmtMs(S.SelfUs).c_str());
  }
  Out += "\n";

  appendf(Out, "per-rule attribution (wall vs summed CPU):\n");
  appendf(Out, "  %-32s %10s %10s %8s %5s %5s %6s %6s\n", "rule", "wall",
          "cpu", "queries", "hit", "miss", "waves", "oblig");
  for (const RuleAttribution &R : A.Rules) {
    appendf(Out, "  %-32s %10s %10s %8llu %5llu %5llu %6llu %6llu%s\n",
            R.Rule.c_str(), fmtMs(R.WallUs).c_str(), fmtMs(R.CpuUs).c_str(),
            static_cast<unsigned long long>(R.Queries),
            static_cast<unsigned long long>(R.CacheHits),
            static_cast<unsigned long long>(R.CacheMisses),
            static_cast<unsigned long long>(R.Waves),
            static_cast<unsigned long long>(R.Obligations),
            R.Proved ? "" : "  (not proved)");
  }
  Out += "\n";

  if (A.Threads) {
    appendf(Out,
            "scheduler: busy %s of %s capacity (%llu threads x %s) — "
            "%.1f%% utilization, idle %s\n",
            fmtMs(A.BusyUs).c_str(), fmtMs(A.Threads * A.WallUs).c_str(),
            static_cast<unsigned long long>(A.Threads),
            fmtMs(A.WallUs).c_str(), 100.0 * A.Utilization,
            fmtMs(A.IdleUs).c_str());
  } else {
    appendf(Out, "scheduler: busy %s\n", fmtMs(A.BusyUs).c_str());
  }
  Out += "\n";

  appendf(Out, "wasted work:\n");
  appendf(Out, "  single-flight cache waits: %llu (%s blocked)\n",
          static_cast<unsigned long long>(A.CacheWaits),
          fmtMs(A.CacheWaitUs).c_str());
  appendf(Out, "  strengthening re-checks:   %llu (%s re-proved)\n",
          static_cast<unsigned long long>(A.Rechecks),
          fmtMs(A.RecheckUs).c_str());
  appendf(Out, "  re-checks skipped by unsat cores: %llu (work avoided)\n",
          static_cast<unsigned long long>(A.CoreSkips));
  appendf(Out, "  strengthenings:            %llu\n",
          static_cast<unsigned long long>(A.Strengthenings));
  if (A.Threads)
    appendf(Out, "  idle capacity:             %s\n", fmtMs(A.IdleUs).c_str());
  return Out;
}

std::string timeline::renderTimelineJson(const TimelineAnalysis &A) {
  std::string Out = "{\"schema\":\"pec-timeline-v1\"";
  auto Num = [&](const char *Key, uint64_t V) {
    Out += ",\"";
    Out += Key;
    Out += "\":";
    Out += std::to_string(V);
  };
  Num("wall_us", A.WallUs);
  Num("jobs", A.Jobs);
  Num("threads", A.Threads);
  Num("spans", A.Spans);
  Num("queries", A.Queries);
  Num("critical_path_us", A.CriticalPathUs);
  Out += ",\"critical_path\":[";
  for (size_t I = 0; I < A.CriticalPath.size(); ++I) {
    const CriticalPathStep &S = A.CriticalPath[I];
    if (I)
      Out += ',';
    Out += "{\"span\":" + std::to_string(S.SpanId) + ",\"name\":\"" +
           escapeJson(S.Name) + "\",\"detail\":\"" + escapeJson(S.Detail) +
           "\",\"self_us\":" + std::to_string(S.SelfUs) + "}";
  }
  Out += "],\"rules\":[";
  for (size_t I = 0; I < A.Rules.size(); ++I) {
    const RuleAttribution &R = A.Rules[I];
    if (I)
      Out += ',';
    Out += "{\"name\":\"" + escapeJson(R.Rule) + "\"";
    Out += ",\"proved\":" + std::string(R.Proved ? "true" : "false");
    Out += ",\"wall_us\":" + std::to_string(R.WallUs);
    Out += ",\"cpu_us\":" + std::to_string(R.CpuUs);
    Out += ",\"queries\":" + std::to_string(R.Queries);
    Out += ",\"cache_hits\":" + std::to_string(R.CacheHits);
    Out += ",\"cache_misses\":" + std::to_string(R.CacheMisses);
    Out += ",\"waves\":" + std::to_string(R.Waves);
    Out += ",\"obligations\":" + std::to_string(R.Obligations) + "}";
  }
  Out += "]";
  Num("busy_us", A.BusyUs);
  char Util[32];
  snprintf(Util, sizeof(Util), "%.4f", A.Utilization);
  Out += ",\"utilization\":";
  Out += Util;
  Num("idle_us", A.IdleUs);
  Out += ",\"wasted\":{";
  Out += "\"cache_waits\":" + std::to_string(A.CacheWaits);
  Out += ",\"cache_wait_us\":" + std::to_string(A.CacheWaitUs);
  Out += ",\"rechecks\":" + std::to_string(A.Rechecks);
  Out += ",\"recheck_us\":" + std::to_string(A.RecheckUs);
  Out += ",\"core_skips\":" + std::to_string(A.CoreSkips);
  Out += ",\"strengthenings\":" + std::to_string(A.Strengthenings);
  Out += "}}\n";
  return Out;
}
