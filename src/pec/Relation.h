//===- Relation.h - Correlation relations -----------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correlation relation of Sec. 3: entries `(l1, l2, phi)` pairing a
/// location of the original CFG with one of the transformed CFG under a
/// predicate over the two program states (a formula over the designated
/// state constants s1 and s2). The Checker strengthens entry predicates in
/// place while turning the relation into a bisimulation relation.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_RELATION_H
#define PEC_PEC_RELATION_H

#include "cfg/Cfg.h"
#include "solver/Formula.h"

#include <map>
#include <string>
#include <vector>

namespace pec {

struct RelEntry {
  Location L1 = InvalidLocation;
  Location L2 = InvalidLocation;
  FormulaPtr Pred;
};

class CorrelationRelation {
public:
  /// Adds an entry if the pair is new; returns its index either way.
  size_t add(Location L1, Location L2, FormulaPtr Pred);

  /// Index of the entry for (L1, L2), or -1.
  int32_t find(Location L1, Location L2) const;

  const std::vector<RelEntry> &entries() const { return Entries; }
  RelEntry &entry(size_t I) { return Entries[I]; }
  size_t size() const { return Entries.size(); }

  /// Does any entry mention \p L as its original-program location?
  bool hasOrigLocation(Location L) const { return OrigLocs.count(L) != 0; }
  bool hasTransLocation(Location L) const { return TransLocs.count(L) != 0; }

  /// Stop-location masks for path enumeration (the `->R` relation).
  std::vector<char> origStopMask(uint32_t NumLocations) const;
  std::vector<char> transStopMask(uint32_t NumLocations) const;

  std::string str(const TermArena &A) const;

private:
  std::vector<RelEntry> Entries;
  std::map<std::pair<Location, Location>, size_t> Index;
  std::map<Location, uint32_t> OrigLocs;  ///< Location -> refcount.
  std::map<Location, uint32_t> TransLocs;
};

} // namespace pec

#endif // PEC_PEC_RELATION_H
