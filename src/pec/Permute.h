//===- Permute.h - Loop reordering pre-pass ---------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Permute module (paper Sec. 6): a pre-pass that proves loop
/// *reordering* transformations — which have no bisimulation — correct via
/// the Permute Theorem (Thm. 2), then replaces the proven-equivalent loops
/// with a shared fresh statement meta-variable so the bisimulation phase
/// sees them as equal.
///
/// Two canonical shapes are recognized:
///
///   * a perfect `for`-nest with a meta-statement body `S[e1(i), ...]` on
///     both sides (interchange, reversal, skewing, alignment): the index
///     mapping F is read off the transformed side's hole arguments, its
///     inverse is computed by exact rational Gaussian elimination (the
///     paper's range-analysis heuristic, specialized to affine maps), and
///     Theorem 2's conditions 1-4 become ground LIA validity queries over
///     skolemized index variables. Condition 5 is first attempted as "no
///     pair is reordered" (an unsatisfiability query); if pairs are
///     reordered, a universally quantified Commute side condition must
///     cover them.
///
///   * two adjacent single loops vs. one fused loop over the same bounds
///     (fusion and its inverse, distribution), where the reordered pairs
///     are exactly `B2(i') before B1(i)` for `i' < i`, covered by a
///     quantified cross-Commute fact.
///
/// Loop index variables are treated as dead after the fragment: the
/// replacement meta-variable frames them out, and the required deadness is
/// reported to the execution engine via `RequiredDeadVars` (checked when a
/// rule fires; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_PERMUTE_H
#define PEC_PEC_PERMUTE_H

#include "lang/Rule.h"
#include "logic/Lowering.h"
#include "solver/Atp.h"

#include <map>
#include <set>
#include <string>

namespace pec {

struct PermuteOutcome {
  bool Attempted = false; ///< A permute-shaped loop pair was found.
  bool Proved = false;
  std::string Note;
  /// Rewritten programs (valid when Proved): the proven loops are replaced
  /// by a shared fresh meta-statement.
  StmtPtr NewBefore;
  StmtPtr NewAfter;
  /// Frame/mask info for the fresh meta-statement(s).
  std::map<Symbol, MetaStmtInfo> ExtraStmtInfo;
  /// Index variables that must be dead after the fragment when the rule
  /// fires.
  std::set<Symbol> RequiredDeadVars;
};

/// Attempts the Permute Theorem on \p R. \p Prover is used (and its query
/// counter advanced) for the theorem's conditions.
PermuteOutcome runPermute(const Rule &R, Atp &Prover);

} // namespace pec

#endif // PEC_PEC_PERMUTE_H
