//===- Facts.h - Side-condition fact catalog --------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalog of side-condition facts with semantic meanings (paper
/// Fig. 4 / Fig. 10) and the machinery that turns a rule's side condition
/// into the three consumers' views:
///
///   1. a `LoweringEnv` for facts encoded structurally (frames and masks,
///      see Lowering.h);
///   2. `LocationFacts` — assume instances at labeled locations, the
///      paper's InsertAssumes (Fig. 9 line 3);
///   3. `CommuteEvidence` — (possibly quantified) commutativity facts the
///      Permute module consumes when discharging Theorem 2's property 5.
///
/// Supported facts:
///
///   | fact                   | meaning                                    |
///   |------------------------|--------------------------------------------|
///   | DoesNotModify(S, X)@L  | X var: frame; X expr: eval stable across S |
///   | DoesNotAccess(S, X)@L  | S neither reads nor writes X (mask+frame)  |
///   | DoesNotUse(E, X)@L     | expression E does not read X (mask)        |
///   | ConstExpr(E)@L         | E's value is state-independent             |
///   | StrictlyPositive(E)@L  | eval(s, E) > 0 at L                        |
///   | Commute(A, B)@L        | step(step(s,A),B) = step(step(s,B),A)      |
///   | Idempotent(S)@L        | step(step(s,S),S) = step(s,S)              |
///   | StableUnder(S1, S2)@L  | step(s,S1)=s => step(step(s,S2),S1)=step(s,S2) |
///
/// The execution engine (src/engine) establishes each fact with a
/// conservative syntactic check when the rule fires (paper Sec. 8).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_FACTS_H
#define PEC_PEC_FACTS_H

#include "cfg/Cfg.h"
#include "lang/Meaning.h"
#include "lang/Rule.h"
#include "logic/Lowering.h"
#include "logic/SymExec.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace pec {

/// A commutativity fact for the Permute module: statements \p A and \p B
/// commute, universally over the bound variable meta-variables \p Bound
/// (empty for ground facts). `Guard` is an optional antecedent side
/// condition over the bound variables (e.g. `K < L`), currently unused by
/// the shipped rules but kept for generality.
struct CommuteEvidence {
  std::vector<Symbol> Bound;
  StmtPtr A; ///< MetaStmt reference with hole arguments.
  StmtPtr B;
  Symbol AtLabel;
};

/// Everything the PEC pipeline derives from one rule's side condition.
struct ProofContext {
  LoweringEnv Env;
  LocationFacts OrigFacts;  ///< Keyed by locations of the original CFG.
  LocationFacts TransFacts; ///< Keyed by locations of the transformed CFG.
  std::vector<CommuteEvidence> Commutes;

  /// True if the statement meta-variable \p S is declared (by frame facts or
  /// hole patterns) to preserve the value of expression \p X — used by the
  /// branch-condition transport in the Correlate module.
  bool stmtPreservesExpr(Symbol StmtMeta, const ExprPtr &X) const;

  /// True if atomic statement \p Atom (Assign/MetaStmt/Assume/Skip) is known
  /// to preserve the value of \p X. For assignments this is a syntactic
  /// check on the written variable vs. \p X's reads (meta-variables are
  /// assumed non-aliasing; the engine enforces injective matching).
  bool atomPreservesExpr(const StmtPtr &Atom, const ExprPtr &X) const;

  /// Expression-meta eval-stability facts registered per (stmt, label):
  /// `DoesNotModify(S, E)@L` with an expression target.
  struct EvalStability {
    Symbol StmtMeta;
    ExprPtr Target;
  };
  std::vector<EvalStability> EvalStabilityFacts;
};

/// Builds the proof context for \p R. Labels in side conditions are looked
/// up in \p Orig first, then \p Trans. Returns an error for unknown facts,
/// unknown labels, or ill-sorted fact arguments.
///
/// \p UserFacts adds user-declared fact meanings (paper Fig. 4) to the
/// built-in catalog; a user declaration with a built-in name takes
/// precedence (except for the structurally lowered facts, which keep their
/// frame/mask encoding).
Expected<ProofContext> buildProofContext(
    const Rule &R, const Cfg &Orig, const Cfg &Trans,
    const std::vector<FactDecl> &UserFacts = {});

/// The built-in fact declarations expressed in the meaning language
/// (StrictlyPositive, DoesNotModify with an expression target, Commute,
/// Idempotent, StableUnder).
const std::vector<FactDecl> &builtinFactDecls();

/// Instantiates \p Decl's meaning for \p Args at symbolic state \p State
/// (`s` in the meaning refers to \p State). Returns null on arity or
/// argument-kind mismatch.
FormulaPtr instantiateMeaning(const FactDecl &Decl,
                              const std::vector<FactArg> &Args, Lowering &L,
                              TermId State);

} // namespace pec

#endif // PEC_PEC_FACTS_H
