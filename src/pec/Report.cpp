//===- Report.cpp - Machine-readable proof reports --------------------------------===//

#include "pec/Report.h"

#include "support/Metrics.h"
#include "support/Telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <thread>

using namespace pec;
using telemetry::jsonEscape;
using telemetry::NumPurposes;
using telemetry::Purpose;
using telemetry::purposeName;

namespace {

void appendKey(std::string &Out, const char *Key) {
  Out += '"';
  Out += Key;
  Out += "\":";
}

void appendString(std::string &Out, const char *Key, const std::string &V) {
  appendKey(Out, Key);
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
}

void appendUint(std::string &Out, const char *Key, uint64_t V) {
  appendKey(Out, Key);
  Out += std::to_string(V);
}

void appendBool(std::string &Out, const char *Key, bool V) {
  appendKey(Out, Key);
  Out += V ? "true" : "false";
}

void appendSeconds(std::string &Out, const char *Key, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  appendKey(Out, Key);
  Out += Buf;
}

void appendAtp(std::string &Out, const AtpStats &S) {
  appendKey(Out, "atp");
  Out += '{';
  appendUint(Out, "queries", S.Queries);
  Out += ',';
  appendUint(Out, "microseconds", S.Microseconds);
  Out += ',';
  appendUint(Out, "theory_checks", S.TheoryChecks);
  Out += ',';
  appendUint(Out, "theory_conflicts", S.TheoryConflicts);
  Out += ',';
  appendUint(Out, "theory_propagations", S.TheoryPropagations);
  Out += ',';
  appendUint(Out, "theory_pops", S.TheoryPops);
  Out += ',';
  appendUint(Out, "sat_conflicts", S.SatConflicts);
  Out += ',';
  appendUint(Out, "sat_decisions", S.SatDecisions);
  Out += ',';
  appendUint(Out, "propagations", S.Propagations);
  Out += ',';
  appendUint(Out, "restarts", S.Restarts);
  Out += ',';
  appendUint(Out, "learned_clauses", S.LearnedClauses);
  Out += ',';
  appendUint(Out, "deleted_clauses", S.DeletedClauses);
  Out += ',';
  appendUint(Out, "assumption_solves", S.AssumptionSolves);
  Out += ',';
  appendUint(Out, "assumption_cores", S.AssumptionCores);
  Out += ',';
  appendUint(Out, "core_literals", S.CoreLiterals);
  Out += ',';
  // v6 addition: queries the equality-saturation stage closed for this
  // rule. Replayed through the cache WorkDelta, so the count is
  // scheduling-independent like every other solver counter here; the
  // other saturation gauges (e-graph nodes, rebuild time) are run-level
  // only (the `saturation` section).
  appendUint(Out, "sat_closed", S.SatClosed);
  Out += ',';
  appendKey(Out, "by_purpose");
  Out += '{';
  for (size_t P = 0; P < NumPurposes; ++P) {
    if (P)
      Out += ',';
    appendKey(Out, purposeName(static_cast<Purpose>(P)));
    Out += '{';
    appendUint(Out, "queries", S.ByPurpose[P].Queries);
    Out += ',';
    appendUint(Out, "microseconds", S.ByPurpose[P].Microseconds);
    Out += '}';
  }
  Out += "}}";
}

void appendStringArray(std::string &Out, const char *Key,
                       const std::vector<std::string> &Vs) {
  appendKey(Out, Key);
  Out += '[';
  for (size_t I = 0; I < Vs.size(); ++I) {
    if (I)
      Out += ',';
    Out += '"';
    Out += jsonEscape(Vs[I]);
    Out += '"';
  }
  Out += ']';
}

void appendDiagnosis(std::string &Out, const FailureDiagnosis &D) {
  appendKey(Out, "diagnosis");
  Out += '{';
  appendString(Out, "kind", failureKindName(D.Kind));
  Out += ',';
  appendKey(Out, "l1");
  Out += D.L1 == InvalidLocation ? "-1" : std::to_string(D.L1);
  Out += ',';
  appendKey(Out, "l2");
  Out += D.L2 == InvalidLocation ? "-1" : std::to_string(D.L2);
  Out += ',';
  appendUint(Out, "mover_side", static_cast<uint64_t>(D.MoverSide));
  Out += ',';
  appendString(Out, "entry_predicate", D.EntryPredicate);
  Out += ',';
  appendString(Out, "obligation", D.Obligation);
  Out += ',';
  appendString(Out, "minimized_obligation", D.MinimizedObligation);
  Out += ',';
  appendUint(Out, "obligation_conjuncts", D.ObligationConjuncts);
  Out += ',';
  appendUint(Out, "minimized_conjuncts", D.MinimizedConjuncts);
  Out += ',';
  appendUint(Out, "minimizer_queries", D.MinimizerQueries);
  Out += ',';
  appendKey(Out, "model");
  Out += '{';
  appendBool(Out, "complete", D.Model.Complete);
  Out += ',';
  appendKey(Out, "values");
  Out += '[';
  for (size_t I = 0; I < D.Model.Values.size(); ++I) {
    if (I)
      Out += ',';
    Out += '{';
    appendString(Out, "term", D.Model.Values[I].Term);
    Out += ',';
    appendKey(Out, "value");
    Out += std::to_string(D.Model.Values[I].Value);
    Out += '}';
  }
  Out += "],";
  appendStringArray(Out, "literals", D.Model.Literals);
  Out += "},";
  appendStringArray(Out, "assumed_facts", D.AssumedFacts);
  Out += ',';
  appendStringArray(Out, "strengthening_trail", D.StrengtheningTrail);
  Out += '}';
}


/// One serialized histogram: summary percentiles plus the sparse
/// `[lower_bound, count]` bucket array (only non-empty buckets).
void appendHistogram(std::string &Out, const metrics::HistogramSnapshot &H) {
  Out += '{';
  appendUint(Out, "count", H.Count);
  Out += ',';
  appendUint(Out, "sum", H.Sum);
  Out += ',';
  appendUint(Out, "max", H.Max);
  Out += ',';
  appendUint(Out, "p50", H.percentile(0.50));
  Out += ',';
  appendUint(Out, "p90", H.percentile(0.90));
  Out += ',';
  appendUint(Out, "p99", H.percentile(0.99));
  Out += ',';
  appendKey(Out, "buckets");
  Out += '[';
  bool First = true;
  for (unsigned B = 0; B < metrics::NumBuckets; ++B) {
    if (!H.Buckets[B])
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += '[';
    Out += std::to_string(metrics::bucketLowerBound(B));
    Out += ',';
    Out += std::to_string(H.Buckets[B]);
    Out += ']';
  }
  Out += "]}";
}

/// The v4 `metrics` section: the registry snapshot. `atp_query_us` nests
/// the per-purpose slices (keyed like `atp.by_purpose`); the other
/// histograms and the counters are flat.
void appendMetrics(std::string &Out, const metrics::Snapshot &S) {
  appendKey(Out, "metrics");
  Out += '{';
  appendKey(Out, "atp_query_us");
  Out += '{';
  for (size_t P = 0; P < NumPurposes; ++P) {
    if (P)
      Out += ',';
    appendKey(Out, purposeName(static_cast<Purpose>(P)));
    appendHistogram(Out,
                    S.hist(metrics::atpQueryHist(static_cast<Purpose>(P))));
  }
  Out += "},";
  for (metrics::Hist H :
       {metrics::Hist::RuleProveUs, metrics::Hist::WaveWidth,
        metrics::Hist::CacheWaitUs, metrics::Hist::PoolTaskUs,
        metrics::Hist::SatConflictSize, metrics::Hist::TheoryConflictSize}) {
    appendKey(Out, metrics::histName(H));
    appendHistogram(Out, S.hist(H));
    Out += ',';
  }
  appendKey(Out, "counters");
  Out += '{';
  for (size_t C = 0; C < metrics::NumCounters; ++C) {
    if (C)
      Out += ',';
    appendUint(Out, metrics::counterName(static_cast<metrics::Counter>(C)),
               S.Counters[C]);
  }
  Out += "}}";
}

void appendRule(std::string &Out, const RuleReport &R) {
  const PecResult &P = R.Result;
  Out += '{';
  appendString(Out, "name", R.Name);
  Out += ',';
  appendBool(Out, "proved", P.Proved);
  Out += ',';
  appendString(Out, "method", P.UsedPermute ? "permute" : "bisimulation");
  Out += ',';
  appendString(Out, "failure_reason", failureKindName(P.Kind));
  Out += ',';
  appendString(Out, "failure_detail", P.FailureReason);
  Out += ',';
  if (!P.Proved && P.Diagnosis) {
    appendDiagnosis(Out, *P.Diagnosis);
    Out += ',';
  }
  appendSeconds(Out, "seconds", P.Seconds);
  Out += ',';
  appendKey(Out, "phases");
  Out += '{';
  appendSeconds(Out, "permute_seconds", P.PermuteSeconds);
  Out += ',';
  appendSeconds(Out, "correlate_seconds", P.CorrelateSeconds);
  Out += ',';
  appendSeconds(Out, "check_seconds", P.CheckSeconds);
  Out += "},";
  appendUint(Out, "strengthenings", P.Strengthenings);
  Out += ',';
  appendUint(Out, "relation_size", P.RelationSize);
  Out += ',';
  appendUint(Out, "path_pairs", P.PathPairs);
  Out += ',';
  appendUint(Out, "pruned_path_pairs", P.PrunedPathPairs);
  Out += ',';
  appendAtp(Out, P.Atp);
  Out += '}';
}

} // namespace

std::string pec::renderJsonReport(const std::string &Command,
                                  const std::vector<RuleReport> &Rules,
                                  const RunInfo *Run) {
  uint64_t Proved = 0, AtpQueries = 0, AtpMicros = 0;
  uint64_t SatClosed = 0, EgraphNodes = 0, RebuildMicros = 0;
  double Seconds = 0;
  for (const RuleReport &R : Rules) {
    Proved += R.Result.Proved ? 1 : 0;
    AtpQueries += R.Result.Atp.Queries;
    AtpMicros += R.Result.Atp.Microseconds;
    SatClosed += R.Result.Atp.SatClosed;
    EgraphNodes += R.Result.Atp.EgraphNodes;
    RebuildMicros += R.Result.Atp.SaturateRebuildMicros;
    Seconds += R.Result.Seconds;
  }

  // Sequential, uncached default when the caller supplies no run context;
  // the metrics section still reflects whatever the process recorded.
  RunInfo Sequential;
  if (!Run) {
    Sequential.HardwareConcurrency = std::thread::hardware_concurrency();
    Sequential.WallSeconds = Seconds;
    Sequential.Metrics = metrics::snapshot();
    Run = &Sequential;
  }

  std::string Out = "{";
  appendString(Out, "schema", "pec-report-v6");
  Out += ',';
  appendString(Out, "command", Command);
  Out += ',';
  appendKey(Out, "parallelism");
  Out += '{';
  appendUint(Out, "jobs", Run->Jobs);
  Out += ',';
  appendUint(Out, "hardware_concurrency", Run->HardwareConcurrency);
  Out += ',';
  appendSeconds(Out, "wall_seconds", Run->WallSeconds);
  Out += ',';
  // Summed per-rule wall-clock; wall_seconds / rule_seconds < 1 is the
  // parallel speedup achieved by the run.
  appendSeconds(Out, "rule_seconds", Seconds);
  Out += "},";
  appendKey(Out, "cache");
  Out += '{';
  appendBool(Out, "enabled", Run->CacheEnabled);
  Out += ',';
  appendUint(Out, "hits", Run->Cache.Hits);
  Out += ',';
  appendUint(Out, "misses", Run->Cache.Misses);
  Out += ',';
  appendUint(Out, "insertions", Run->Cache.Insertions);
  Out += ',';
  appendUint(Out, "evictions", Run->Cache.Evictions);
  Out += ',';
  appendUint(Out, "model_bypasses", Run->Cache.ModelBypasses);
  Out += ',';
  appendUint(Out, "entries", Run->Cache.Entries);
  Out += ',';
  // v5 persistent-store counters (deterministically zero for runs
  // without --cache-dir). The wait count is deliberately absent: how
  // often threads blocked on in-flight entries is pure scheduling.
  appendUint(Out, "disk_hits", Run->Cache.DiskHits);
  Out += ',';
  appendUint(Out, "disk_entries", Run->Cache.DiskEntries);
  Out += ',';
  appendUint(Out, "load_ms", Run->Cache.LoadMicros / 1000);
  Out += ',';
  appendUint(Out, "checkpoint_ms", Run->Cache.CheckpointMicros / 1000);
  Out += ',';
  appendSeconds(Out, "hit_rate", Run->Cache.hitRate());
  Out += "},";
  // v6: the equality-saturation pre-solve stage (docs/SOLVER.md). The
  // node and rebuild-time gauges are reported only here as run totals:
  // their per-rule attribution depends on which worker missed the cache
  // first, while the run-level sums are scheduling-independent
  // (single-flight makes every distinct key miss exactly once, and the
  // per-query e-graphs are history-free). rebuild_us is timing, masked
  // like every *_us key by the determinism harness.
  appendKey(Out, "saturation");
  Out += '{';
  appendUint(Out, "sat_closed", SatClosed);
  Out += ',';
  appendUint(Out, "egraph_nodes", EgraphNodes);
  Out += ',';
  appendUint(Out, "rebuild_us", RebuildMicros);
  Out += "},";
  appendMetrics(Out, Run->Metrics);
  Out += ',';
  appendKey(Out, "rules");
  Out += "[\n";
  for (size_t I = 0; I < Rules.size(); ++I) {
    if (I)
      Out += ",\n";
    appendRule(Out, Rules[I]);
  }
  Out += "\n],";
  appendKey(Out, "totals");
  Out += '{';
  appendUint(Out, "rules", Rules.size());
  Out += ',';
  appendUint(Out, "proved", Proved);
  Out += ',';
  appendUint(Out, "failed", Rules.size() - Proved);
  Out += ',';
  appendSeconds(Out, "seconds", Seconds);
  Out += ',';
  appendUint(Out, "atp_queries", AtpQueries);
  Out += ',';
  appendUint(Out, "atp_microseconds", AtpMicros);
  Out += "}}\n";
  return Out;
}

std::string pec::renderStatsTable(const std::vector<RuleReport> &Rules) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "%-30s %-7s %8s %8s %8s %8s | %6s %6s %6s %6s %6s %6s | "
                "%5s\n",
                "rule", "proved", "total_s", "perm_s", "corr_s", "check_s",
                "prune", "oblig", "perm", "stren", "mini", "other", "iter");
  Out += Line;
  Out += std::string(127, '-');
  Out += '\n';

  auto PurposeCount = [](const PecResult &P, Purpose Which) {
    return P.Atp.ByPurpose[static_cast<size_t>(Which)].Queries;
  };

  PecResult Total;
  Total.Proved = true;
  for (const RuleReport &R : Rules) {
    const PecResult &P = R.Result;
    std::snprintf(
        Line, sizeof(Line),
        "%-30s %-7s %8.3f %8.3f %8.3f %8.3f | %6" PRIu64 " %6" PRIu64
        " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " | %5u\n",
        R.Name.c_str(), P.Proved ? "yes" : "NO", P.Seconds,
        P.PermuteSeconds, P.CorrelateSeconds, P.CheckSeconds,
        PurposeCount(P, Purpose::PathPruning),
        PurposeCount(P, Purpose::Obligation),
        PurposeCount(P, Purpose::PermuteCondition),
        PurposeCount(P, Purpose::Strengthening),
        PurposeCount(P, Purpose::Minimize),
        PurposeCount(P, Purpose::Other), P.Strengthenings);
    Out += Line;

    Total.Proved = Total.Proved && P.Proved;
    Total.Seconds += P.Seconds;
    Total.PermuteSeconds += P.PermuteSeconds;
    Total.CorrelateSeconds += P.CorrelateSeconds;
    Total.CheckSeconds += P.CheckSeconds;
    Total.Strengthenings += P.Strengthenings;
    Total.Atp.Queries += P.Atp.Queries;
    Total.Atp.Microseconds += P.Atp.Microseconds;
    for (size_t I = 0; I < NumPurposes; ++I) {
      Total.Atp.ByPurpose[I].Queries += P.Atp.ByPurpose[I].Queries;
      Total.Atp.ByPurpose[I].Microseconds += P.Atp.ByPurpose[I].Microseconds;
    }
  }
  Out += std::string(127, '-');
  Out += '\n';
  std::snprintf(
      Line, sizeof(Line),
      "%-30s %-7s %8.3f %8.3f %8.3f %8.3f | %6" PRIu64 " %6" PRIu64
      " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " | %5u\n",
      "TOTAL", Total.Proved ? "yes" : "NO", Total.Seconds,
      Total.PermuteSeconds, Total.CorrelateSeconds, Total.CheckSeconds,
      PurposeCount(Total, Purpose::PathPruning),
      PurposeCount(Total, Purpose::Obligation),
      PurposeCount(Total, Purpose::PermuteCondition),
      PurposeCount(Total, Purpose::Strengthening),
      PurposeCount(Total, Purpose::Minimize),
      PurposeCount(Total, Purpose::Other), Total.Strengthenings);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "%" PRIu64 " ATP queries, %.3fs inside the ATP\n",
                Total.Atp.Queries,
                static_cast<double>(Total.Atp.Microseconds) / 1e6);
  Out += Line;
  return Out;
}

std::string pec::renderCacheStatsTable(const AtpCacheStats &C) {
  std::string Out;
  char Line[160];
  std::snprintf(Line, sizeof(Line),
                "atp cache: %.1f%% hit rate (%" PRIu64 " hits / %" PRIu64
                " lookups)\n",
                100.0 * C.hitRate(), C.Hits, C.Hits + C.Misses);
  Out += Line;
  auto Row = [&](const char *Label, uint64_t V) {
    std::snprintf(Line, sizeof(Line), "  %-22s %10" PRIu64 "\n", Label, V);
    Out += Line;
  };
  Row("memory hits", C.Hits - C.DiskHits);
  Row("disk hits", C.DiskHits);
  Row("misses", C.Misses);
  Row("single-flight waits", C.Waits);
  Row("model bypasses", C.ModelBypasses);
  Row("insertions", C.Insertions);
  Row("evictions", C.Evictions);
  std::snprintf(Line, sizeof(Line),
                "  %-22s %10" PRIu64 "  (%" PRIu64 " from disk)\n",
                "resident entries", C.Entries, C.DiskEntries);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "  %-22s %7.1f ms load, %.1f ms checkpoints\n", "store",
                static_cast<double>(C.LoadMicros) / 1000.0,
                static_cast<double>(C.CheckpointMicros) / 1000.0);
  Out += Line;
  return Out;
}

//===----------------------------------------------------------------------===//
// Schema validation
//===----------------------------------------------------------------------===//

namespace {

bool failV(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

/// Requires member \p Key of kind \p K on object \p Obj.
bool requireField(const json::ValuePtr &Obj, const std::string &Path,
                  const char *Key, json::Kind K, std::string *Error) {
  json::ValuePtr V = Obj->get(Key);
  if (!V)
    return failV(Error, Path + ": missing field '" + Key + "'");
  if (V->kind() != K)
    return failV(Error, Path + ": field '" + Key + "' has the wrong type");
  return true;
}

bool validatePurposeStats(const json::ValuePtr &V, const std::string &Path,
                          std::string *Error) {
  return requireField(V, Path, "queries", json::Kind::Number, Error) &&
         requireField(V, Path, "microseconds", json::Kind::Number, Error);
}

bool validateAtp(const json::ValuePtr &Atp, const std::string &Path,
                 int Version, std::string *Error) {
  for (const char *Key :
       {"queries", "microseconds", "theory_checks", "theory_conflicts",
        "sat_conflicts", "sat_decisions", "propagations"})
    if (!requireField(Atp, Path, Key, json::Kind::Number, Error))
      return false;
  // Solver counters added mid-v3 (restarts, learned/deleted clauses,
  // assumption solves, online theory propagation, assumption-level unsat
  // cores) are additive: older v3 documents lack them, so they are only
  // type-checked when present.
  // `sat_closed` (v6) is additive in the same way: absent before the
  // equality-saturation stage existed, type-checked when present.
  for (const char *Key :
       {"restarts", "learned_clauses", "deleted_clauses",
        "assumption_solves", "theory_propagations", "theory_pops",
        "assumption_cores", "core_literals", "sat_closed"}) {
    json::ValuePtr V = Atp->get(Key);
    if (V && !V->isNumber())
      return failV(Error, Path + ": field '" + std::string(Key) +
                              "' has the wrong type");
  }
  if (!requireField(Atp, Path, "by_purpose", json::Kind::Object, Error))
    return false;
  json::ValuePtr ByPurpose = Atp->get("by_purpose");
  for (size_t P = 0; P < NumPurposes; ++P) {
    // The `minimize` slice is a v2 addition; v1 documents predate it.
    if (Version < 2 && static_cast<Purpose>(P) == Purpose::Minimize)
      continue;
    const char *Name = purposeName(static_cast<Purpose>(P));
    json::ValuePtr Slice = ByPurpose->get(Name);
    if (!Slice || !Slice->isObject())
      return failV(Error, Path + ".by_purpose: missing purpose '" +
                              std::string(Name) + "'");
    if (!validatePurposeStats(Slice, Path + ".by_purpose." + Name, Error))
      return false;
  }
  return true;
}

bool validateDiagnosis(const json::ValuePtr &D, const std::string &Path,
                       std::string *Error) {
  if (!requireField(D, Path, "kind", json::Kind::String, Error) ||
      !requireField(D, Path, "l1", json::Kind::Number, Error) ||
      !requireField(D, Path, "l2", json::Kind::Number, Error) ||
      !requireField(D, Path, "mover_side", json::Kind::Number, Error) ||
      !requireField(D, Path, "entry_predicate", json::Kind::String, Error) ||
      !requireField(D, Path, "obligation", json::Kind::String, Error) ||
      !requireField(D, Path, "minimized_obligation", json::Kind::String,
                    Error) ||
      !requireField(D, Path, "obligation_conjuncts", json::Kind::Number,
                    Error) ||
      !requireField(D, Path, "minimized_conjuncts", json::Kind::Number,
                    Error) ||
      !requireField(D, Path, "minimizer_queries", json::Kind::Number,
                    Error) ||
      !requireField(D, Path, "model", json::Kind::Object, Error) ||
      !requireField(D, Path, "assumed_facts", json::Kind::Array, Error) ||
      !requireField(D, Path, "strengthening_trail", json::Kind::Array,
                    Error))
    return false;
  const std::string &Kind = D->get("kind")->stringValue();
  if (Kind.empty() || failureKindFromName(Kind) == FailureKind::None)
    return failV(Error, Path + ": unknown diagnosis kind '" + Kind + "'");
  if (D->get("minimized_conjuncts")->numberValue() >
      D->get("obligation_conjuncts")->numberValue())
    return failV(Error,
                 Path + ": minimized_conjuncts exceeds obligation_conjuncts");
  json::ValuePtr Model = D->get("model");
  if (!requireField(Model, Path + ".model", "complete", json::Kind::Bool,
                    Error) ||
      !requireField(Model, Path + ".model", "values", json::Kind::Array,
                    Error) ||
      !requireField(Model, Path + ".model", "literals", json::Kind::Array,
                    Error))
    return false;
  const auto &Values = Model->get("values")->array();
  for (size_t I = 0; I < Values.size(); ++I) {
    std::string VPath = Path + ".model.values[" + std::to_string(I) + "]";
    if (!Values[I]->isObject())
      return failV(Error, VPath + ": model values must be objects");
    if (!requireField(Values[I], VPath, "term", json::Kind::String, Error) ||
        !requireField(Values[I], VPath, "value", json::Kind::Number, Error))
      return false;
  }
  return true;
}

bool validateRule(const json::ValuePtr &Rule, const std::string &Path,
                  int Version, std::string *Error) {
  if (!Rule->isObject())
    return failV(Error, Path + ": rule entries must be objects");
  if (!requireField(Rule, Path, "name", json::Kind::String, Error) ||
      !requireField(Rule, Path, "proved", json::Kind::Bool, Error) ||
      !requireField(Rule, Path, "method", json::Kind::String, Error) ||
      !requireField(Rule, Path, "failure_reason", json::Kind::String,
                    Error) ||
      !requireField(Rule, Path, "seconds", json::Kind::Number, Error) ||
      !requireField(Rule, Path, "phases", json::Kind::Object, Error) ||
      !requireField(Rule, Path, "strengthenings", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "relation_size", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "path_pairs", json::Kind::Number, Error) ||
      !requireField(Rule, Path, "pruned_path_pairs", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "atp", json::Kind::Object, Error))
    return false;
  const std::string &Method = Rule->get("method")->stringValue();
  if (Method != "permute" && Method != "bisimulation")
    return failV(Error, Path + ": method must be 'permute' or "
                                "'bisimulation'");
  if (Version >= 2) {
    // v2: failure_reason is a taxonomy slug (empty for proved rules), the
    // free text lives in failure_detail, and failed rules may carry a
    // structured diagnosis.
    if (!requireField(Rule, Path, "failure_detail", json::Kind::String,
                      Error))
      return false;
    const std::string &Reason = Rule->get("failure_reason")->stringValue();
    if (!Reason.empty() && failureKindFromName(Reason) == FailureKind::None)
      return failV(Error,
                   Path + ": unknown failure_reason '" + Reason + "'");
    if (Rule->get("proved")->boolValue() && !Reason.empty())
      return failV(Error, Path + ": proved rule has a failure_reason");
    if (json::ValuePtr D = Rule->get("diagnosis")) {
      if (!D->isObject())
        return failV(Error, Path + ": diagnosis must be an object");
      if (Rule->get("proved")->boolValue())
        return failV(Error, Path + ": proved rule has a diagnosis");
      if (!validateDiagnosis(D, Path + ".diagnosis", Error))
        return false;
    }
  }
  json::ValuePtr Phases = Rule->get("phases");
  for (const char *Key :
       {"permute_seconds", "correlate_seconds", "check_seconds"})
    if (!requireField(Phases, Path + ".phases", Key, json::Kind::Number,
                      Error))
      return false;
  return validateAtp(Rule->get("atp"), Path + ".atp", Version, Error);
}

} // namespace

bool pec::validateReport(const json::ValuePtr &Report, std::string *Error) {
  if (!Report || !Report->isObject())
    return failV(Error, "report: not a JSON object");
  if (!requireField(Report, "report", "schema", json::Kind::String, Error))
    return false;
  const std::string &Schema = Report->get("schema")->stringValue();
  int Version;
  if (Schema == "pec-report-v1")
    Version = 1;
  else if (Schema == "pec-report-v2")
    Version = 2;
  else if (Schema == "pec-report-v3")
    Version = 3;
  else if (Schema == "pec-report-v4")
    Version = 4;
  else if (Schema == "pec-report-v5")
    Version = 5;
  else if (Schema == "pec-report-v6")
    Version = 6;
  else
    return failV(Error, "report: unknown schema '" + Schema + "'");

  if (Version >= 6) {
    // v6: the run-level equality-saturation section.
    if (!requireField(Report, "report", "saturation", json::Kind::Object,
                      Error))
      return false;
    json::ValuePtr Sat = Report->get("saturation");
    for (const char *Key : {"sat_closed", "egraph_nodes", "rebuild_us"})
      if (!requireField(Sat, "saturation", Key, json::Kind::Number, Error))
        return false;
  }

  if (Version >= 3) {
    // v3: run-level parallelism and ATP-cache sections are mandatory.
    if (!requireField(Report, "report", "parallelism", json::Kind::Object,
                      Error) ||
        !requireField(Report, "report", "cache", json::Kind::Object, Error))
      return false;
    json::ValuePtr Par = Report->get("parallelism");
    for (const char *Key :
         {"jobs", "hardware_concurrency", "wall_seconds", "rule_seconds"})
      if (!requireField(Par, "parallelism", Key, json::Kind::Number, Error))
        return false;
    if (Par->get("jobs")->numberValue() < 1)
      return failV(Error, "parallelism: jobs must be at least 1");
    json::ValuePtr Cache = Report->get("cache");
    if (!requireField(Cache, "cache", "enabled", json::Kind::Bool, Error))
      return false;
    for (const char *Key : {"hits", "misses", "insertions", "evictions",
                            "model_bypasses", "entries", "hit_rate"})
      if (!requireField(Cache, "cache", Key, json::Kind::Number, Error))
        return false;
    if (Version >= 5)
      // v5: the persistent-store split (docs/SERVING.md).
      for (const char *Key :
           {"disk_hits", "disk_entries", "load_ms", "checkpoint_ms"})
        if (!requireField(Cache, "cache", Key, json::Kind::Number, Error))
          return false;
  }
  if (Version >= 4) {
    // v4: the pec::metrics snapshot. Every histogram object carries the
    // percentile summary; the per-purpose ATP latency slices are the
    // acceptance-critical part, so each purpose must be present.
    if (!requireField(Report, "report", "metrics", json::Kind::Object,
                      Error))
      return false;
    json::ValuePtr Metrics = Report->get("metrics");
    if (!requireField(Metrics, "metrics", "atp_query_us", json::Kind::Object,
                      Error) ||
        !requireField(Metrics, "metrics", "counters", json::Kind::Object,
                      Error))
      return false;
    auto ValidateHistogram = [&](const json::ValuePtr &H,
                                 const std::string &Path) {
      for (const char *Key : {"count", "sum", "max", "p50", "p90", "p99"})
        if (!requireField(H, Path, Key, json::Kind::Number, Error))
          return false;
      return requireField(H, Path, "buckets", json::Kind::Array, Error);
    };
    json::ValuePtr ByPurpose = Metrics->get("atp_query_us");
    for (size_t P = 0; P < NumPurposes; ++P) {
      const char *Name = purposeName(static_cast<Purpose>(P));
      json::ValuePtr Slice = ByPurpose->get(Name);
      if (!Slice || !Slice->isObject())
        return failV(Error, "metrics.atp_query_us: missing purpose '" +
                                std::string(Name) + "'");
      if (!ValidateHistogram(Slice,
                             "metrics.atp_query_us." + std::string(Name)))
        return false;
    }
    for (const char *Key :
         {"rule_prove_us", "wave_width", "cache_wait_us", "pool_task_us",
          "sat_conflict_size", "theory_conflict_size"}) {
      if (!requireField(Metrics, "metrics", Key, json::Kind::Object, Error))
        return false;
      if (!ValidateHistogram(Metrics->get(Key),
                             "metrics." + std::string(Key)))
        return false;
    }
  }
  if (!requireField(Report, "report", "command", json::Kind::String,
                    Error) ||
      !requireField(Report, "report", "rules", json::Kind::Array, Error) ||
      !requireField(Report, "report", "totals", json::Kind::Object, Error))
    return false;

  const auto &Rules = Report->get("rules")->array();
  for (size_t I = 0; I < Rules.size(); ++I)
    if (!validateRule(Rules[I], "rules[" + std::to_string(I) + "]", Version,
                      Error))
      return false;

  json::ValuePtr Totals = Report->get("totals");
  for (const char *Key : {"rules", "proved", "failed", "seconds",
                          "atp_queries", "atp_microseconds"})
    if (!requireField(Totals, "totals", Key, json::Kind::Number, Error))
      return false;

  // Cross-check: the totals row must agree with the per-rule entries (the
  // acceptance criterion that the JSON matches the human-readable output).
  uint64_t Proved = 0, Queries = 0;
  for (const json::ValuePtr &Rule : Rules) {
    Proved += Rule->get("proved")->boolValue() ? 1 : 0;
    Queries +=
        static_cast<uint64_t>(Rule->get("atp")->get("queries")->numberValue());
  }
  if (static_cast<uint64_t>(Totals->get("rules")->numberValue()) !=
      Rules.size())
    return failV(Error, "totals.rules disagrees with the rules array");
  if (static_cast<uint64_t>(Totals->get("proved")->numberValue()) != Proved)
    return failV(Error, "totals.proved disagrees with the rules array");
  if (static_cast<uint64_t>(Totals->get("atp_queries")->numberValue()) !=
      Queries)
    return failV(Error, "totals.atp_queries disagrees with the rules array");
  return true;
}

//===----------------------------------------------------------------------===//
// Report diffing (the `pec report diff` regression gate)
//===----------------------------------------------------------------------===//

namespace {

struct RuleFacts {
  bool Proved = false;
  double Seconds = 0;
  uint64_t AtpQueries = 0;
  uint64_t StrengtheningMicros = 0;
  uint64_t StrengtheningQueries = 0;
  std::string FailureReason;
};

/// Indexes a validated report's rules array by rule name.
std::map<std::string, RuleFacts> indexRules(const json::ValuePtr &Report) {
  std::map<std::string, RuleFacts> Out;
  for (const json::ValuePtr &Rule : Report->get("rules")->array()) {
    RuleFacts F;
    F.Proved = Rule->get("proved")->boolValue();
    F.Seconds = Rule->get("seconds")->numberValue();
    F.AtpQueries = static_cast<uint64_t>(
        Rule->get("atp")->get("queries")->numberValue());
    // Present in every validated version (the slice predates v1's
    // minimize addition), but guard anyway: diff inputs are arbitrary
    // user files.
    if (json::ValuePtr Slice =
            Rule->get("atp")->get("by_purpose")->get("strengthening")) {
      F.StrengtheningQueries =
          static_cast<uint64_t>(Slice->get("queries")->numberValue());
      F.StrengtheningMicros =
          static_cast<uint64_t>(Slice->get("microseconds")->numberValue());
    }
    F.FailureReason = Rule->get("failure_reason")->stringValue();
    Out.emplace(Rule->get("name")->stringValue(), std::move(F));
  }
  return Out;
}

std::string fmtSeconds(double S) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3fs", S);
  return Buf;
}

} // namespace

ReportDiff pec::diffReports(const json::ValuePtr &Old,
                            const json::ValuePtr &New,
                            const ReportDiffOptions &Options) {
  ReportDiff D;

  // Schema drift is directional: a baseline on an OLDER schema is expected
  // while the tree evolves (upgrade note, suggest regenerating), but a new
  // report on an older schema than its baseline means the producer was
  // rolled back — that is a regression.
  auto SchemaVersion = [](const std::string &S) {
    if (S == "pec-report-v1")
      return 1;
    if (S == "pec-report-v2")
      return 2;
    if (S == "pec-report-v3")
      return 3;
    if (S == "pec-report-v4")
      return 4;
    if (S == "pec-report-v5")
      return 5;
    if (S == "pec-report-v6")
      return 6;
    return 0;
  };
  const std::string &OldSchema = Old->get("schema")->stringValue();
  const std::string &NewSchema = New->get("schema")->stringValue();
  int OldVersion = SchemaVersion(OldSchema);
  int NewVersion = SchemaVersion(NewSchema);
  if (NewVersion < OldVersion)
    D.Regressions.push_back("schema downgrade: baseline is '" + OldSchema +
                            "', new report is '" + NewSchema +
                            "' (the report producer regressed)");
  else if (NewVersion > OldVersion)
    D.Notes.push_back("schema upgraded: baseline is '" + OldSchema +
                      "', new report is '" + NewSchema +
                      "' (regenerate the baseline)");

  std::map<std::string, RuleFacts> OldRules = indexRules(Old);
  std::map<std::string, RuleFacts> NewRules = indexRules(New);

  for (const auto &[Name, OldF] : OldRules) {
    auto It = NewRules.find(Name);
    if (It == NewRules.end()) {
      D.Regressions.push_back("rule '" + Name +
                              "' disappeared from the new report");
      continue;
    }
    const RuleFacts &NewF = It->second;

    if (OldF.Proved && !NewF.Proved)
      D.Regressions.push_back(
          "rule '" + Name + "' regressed: proved -> NOT proved (" +
          (NewF.FailureReason.empty() ? std::string("unspecified")
                                      : NewF.FailureReason) +
          ")");
    else if (!OldF.Proved && NewF.Proved)
      D.Notes.push_back("rule '" + Name + "' improved: NOT proved -> proved");

    // A metric regresses only past BOTH the factor and the absolute slack.
    bool TimeRegressed =
        NewF.Seconds > OldF.Seconds * Options.TimeToleranceFactor &&
        NewF.Seconds > OldF.Seconds + Options.TimeSlackSeconds;
    if (TimeRegressed)
      D.Regressions.push_back(
          "rule '" + Name + "' time regressed: " + fmtSeconds(OldF.Seconds) +
          " -> " + fmtSeconds(NewF.Seconds) + " (tolerance " +
          fmtSeconds(OldF.Seconds * Options.TimeToleranceFactor) + " + " +
          fmtSeconds(Options.TimeSlackSeconds) + " slack)");
    else if (NewF.Seconds > OldF.Seconds * Options.TimeToleranceFactor)
      D.Notes.push_back("rule '" + Name + "' time delta inside slack: " +
                        fmtSeconds(OldF.Seconds) + " -> " +
                        fmtSeconds(NewF.Seconds));

    double QueryCeiling = static_cast<double>(OldF.AtpQueries) *
                          Options.QueryToleranceFactor;
    bool QueriesRegressed =
        static_cast<double>(NewF.AtpQueries) > QueryCeiling &&
        NewF.AtpQueries > OldF.AtpQueries + Options.QuerySlack;
    if (QueriesRegressed)
      D.Regressions.push_back(
          "rule '" + Name + "' ATP queries regressed: " +
          std::to_string(OldF.AtpQueries) + " -> " +
          std::to_string(NewF.AtpQueries) + " (tolerance factor " +
          std::to_string(Options.QueryToleranceFactor) + ", slack " +
          std::to_string(Options.QuerySlack) + ")");

    // The strengthening hot path gets its own budget: total rule time can
    // hide a blow-up here behind savings elsewhere.
    bool StrengtheningTimeRegressed =
        static_cast<double>(NewF.StrengtheningMicros) >
            static_cast<double>(OldF.StrengtheningMicros) *
                Options.StrengtheningTimeToleranceFactor &&
        NewF.StrengtheningMicros >
            OldF.StrengtheningMicros + Options.StrengtheningTimeSlackMicros;
    if (StrengtheningTimeRegressed)
      D.Regressions.push_back(
          "rule '" + Name + "' strengthening time regressed: " +
          std::to_string(OldF.StrengtheningMicros) + "us -> " +
          std::to_string(NewF.StrengtheningMicros) + "us (tolerance factor " +
          std::to_string(Options.StrengtheningTimeToleranceFactor) +
          ", slack " + std::to_string(Options.StrengtheningTimeSlackMicros) +
          "us)");
    bool StrengtheningQueriesRegressed =
        static_cast<double>(NewF.StrengtheningQueries) >
            static_cast<double>(OldF.StrengtheningQueries) *
                Options.StrengtheningQueryToleranceFactor &&
        NewF.StrengtheningQueries >
            OldF.StrengtheningQueries + Options.StrengtheningQuerySlack;
    if (StrengtheningQueriesRegressed)
      D.Regressions.push_back(
          "rule '" + Name + "' strengthening queries regressed: " +
          std::to_string(OldF.StrengtheningQueries) + " -> " +
          std::to_string(NewF.StrengtheningQueries) + " (tolerance factor " +
          std::to_string(Options.StrengtheningQueryToleranceFactor) +
          ", slack " + std::to_string(Options.StrengtheningQuerySlack) + ")");
  }

  for (const auto &[Name, NewF] : NewRules) {
    (void)NewF;
    if (!OldRules.count(Name))
      D.Notes.push_back("rule '" + Name + "' is new in this report");
  }

  // v4 percentile gates (opt-in, see ReportDiffOptions): the run-level
  // per-purpose ATP latency percentiles. Skipped when either document
  // predates v4 or the slice recorded nothing.
  json::ValuePtr OldMetrics = Old->get("metrics");
  json::ValuePtr NewMetrics = New->get("metrics");
  if ((Options.P50ToleranceFactor > 0 || Options.P99ToleranceFactor > 0) &&
      OldMetrics && NewMetrics) {
    auto GatePercentile = [&](const char *PurposeKey, const char *Pct,
                              double Factor, uint64_t SlackUs) {
      if (Factor <= 0)
        return;
      json::ValuePtr OldSlice = OldMetrics->get("atp_query_us");
      json::ValuePtr NewSlice = NewMetrics->get("atp_query_us");
      if (!OldSlice || !NewSlice)
        return;
      OldSlice = OldSlice->get(PurposeKey);
      NewSlice = NewSlice->get(PurposeKey);
      if (!OldSlice || !NewSlice || !OldSlice->isObject() ||
          !NewSlice->isObject())
        return;
      json::ValuePtr OldCount = OldSlice->get("count");
      json::ValuePtr NewCount = NewSlice->get("count");
      json::ValuePtr OldPct = OldSlice->get(Pct);
      json::ValuePtr NewPct = NewSlice->get(Pct);
      if (!OldCount || !NewCount || !OldPct || !NewPct)
        return;
      if (OldCount->numberValue() == 0 || NewCount->numberValue() == 0)
        return;
      double OldP = OldPct->numberValue();
      double NewP = NewPct->numberValue();
      if (NewP > OldP * Factor &&
          NewP > OldP + static_cast<double>(SlackUs))
        D.Regressions.push_back(
            "atp_query_us{" + std::string(PurposeKey) + "} " + Pct +
            " regressed: " + std::to_string(static_cast<uint64_t>(OldP)) +
            "us -> " + std::to_string(static_cast<uint64_t>(NewP)) +
            "us (tolerance factor " + std::to_string(Factor) + ", slack " +
            std::to_string(SlackUs) + "us)");
    };
    for (size_t P = 0; P < NumPurposes; ++P) {
      const char *Name = purposeName(static_cast<Purpose>(P));
      GatePercentile(Name, "p50", Options.P50ToleranceFactor,
                     Options.P50SlackMicros);
      GatePercentile(Name, "p99", Options.P99ToleranceFactor,
                     Options.P99SlackMicros);
    }
  }

  // Warm-cache gate (opt-in, `--min-hit-rate`): the NEW report's run-level
  // hit rate must clear the floor. A warm rerun against a persistent store
  // should re-solve (miss) almost nothing; a new report that ran without
  // the cache at all fails outright so a CI lane dropping --cache-dir
  // cannot pass silently.
  if (Options.MinHitRate > 0) {
    json::ValuePtr Cache = New->get("cache");
    json::ValuePtr Enabled = Cache ? Cache->get("enabled") : nullptr;
    if (!Enabled || !Enabled->boolValue()) {
      D.Regressions.push_back(
          "cache hit-rate gate: the new report ran without the ATP cache "
          "(minimum hit rate " + std::to_string(Options.MinHitRate) + ")");
    } else {
      double Rate = Cache->get("hit_rate")->numberValue();
      char Buf[160];
      uint64_t Hits =
          static_cast<uint64_t>(Cache->get("hits")->numberValue());
      json::ValuePtr DiskHits = Cache->get("disk_hits"); // v5 only.
      uint64_t Disk = DiskHits ? static_cast<uint64_t>(DiskHits->numberValue())
                               : 0;
      std::snprintf(Buf, sizeof(Buf),
                    "cache hit rate %.3f (%" PRIu64 " hits: %" PRIu64
                    " memory, %" PRIu64 " disk)",
                    Rate, Hits, Hits - Disk, Disk);
      if (Rate < Options.MinHitRate)
        D.Regressions.push_back(std::string(Buf) + " below the minimum " +
                                std::to_string(Options.MinHitRate));
      else
        D.Notes.push_back(std::string(Buf) + " meets the minimum " +
                          std::to_string(Options.MinHitRate));
    }
  }

  // Saturation-effectiveness gate (opt-in, `--min-sat-closed`): the NEW
  // report must show the equality-saturation stage closing at least N
  // queries. A report predating v6 (no `saturation` section) or a run
  // with the stage disabled fails outright — a CI lane dropping the
  // stage should not pass silently.
  if (Options.MinSatClosed > 0) {
    json::ValuePtr Sat = New->get("saturation");
    json::ValuePtr Closed = Sat ? Sat->get("sat_closed") : nullptr;
    if (!Closed || !Closed->isNumber()) {
      D.Regressions.push_back(
          "saturation gate: the new report has no saturation.sat_closed "
          "(minimum " + std::to_string(Options.MinSatClosed) + ")");
    } else {
      uint64_t Got = static_cast<uint64_t>(Closed->numberValue());
      if (Got < Options.MinSatClosed)
        D.Regressions.push_back(
            "saturation gate: sat_closed " + std::to_string(Got) +
            " below the minimum " + std::to_string(Options.MinSatClosed));
      else
        D.Notes.push_back("saturation closed " + std::to_string(Got) +
                          " queries (minimum " +
                          std::to_string(Options.MinSatClosed) + ")");
    }
  }

  uint64_t OldProved =
      static_cast<uint64_t>(Old->get("totals")->get("proved")->numberValue());
  uint64_t NewProved =
      static_cast<uint64_t>(New->get("totals")->get("proved")->numberValue());
  D.Notes.push_back("proved totals: " + std::to_string(OldProved) + " -> " +
                    std::to_string(NewProved));
  return D;
}

std::string pec::renderReportDiff(const ReportDiff &D) {
  std::string Out;
  if (D.Regressions.empty())
    Out += "report diff: OK (no regressions)\n";
  else
    Out += "report diff: " + std::to_string(D.Regressions.size()) +
           " regression(s)\n";
  for (const std::string &R : D.Regressions)
    Out += "  REGRESSION: " + R + "\n";
  for (const std::string &N : D.Notes)
    Out += "  note: " + N + "\n";
  return Out;
}
