//===- Report.cpp - Machine-readable proof reports --------------------------------===//

#include "pec/Report.h"

#include "support/Telemetry.h"

#include <cinttypes>
#include <cstdio>

using namespace pec;
using telemetry::jsonEscape;
using telemetry::NumPurposes;
using telemetry::Purpose;
using telemetry::purposeName;

namespace {

void appendKey(std::string &Out, const char *Key) {
  Out += '"';
  Out += Key;
  Out += "\":";
}

void appendString(std::string &Out, const char *Key, const std::string &V) {
  appendKey(Out, Key);
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
}

void appendUint(std::string &Out, const char *Key, uint64_t V) {
  appendKey(Out, Key);
  Out += std::to_string(V);
}

void appendBool(std::string &Out, const char *Key, bool V) {
  appendKey(Out, Key);
  Out += V ? "true" : "false";
}

void appendSeconds(std::string &Out, const char *Key, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  appendKey(Out, Key);
  Out += Buf;
}

void appendAtp(std::string &Out, const AtpStats &S) {
  appendKey(Out, "atp");
  Out += '{';
  appendUint(Out, "queries", S.Queries);
  Out += ',';
  appendUint(Out, "microseconds", S.Microseconds);
  Out += ',';
  appendUint(Out, "theory_checks", S.TheoryChecks);
  Out += ',';
  appendUint(Out, "theory_conflicts", S.TheoryConflicts);
  Out += ',';
  appendUint(Out, "sat_conflicts", S.SatConflicts);
  Out += ',';
  appendUint(Out, "sat_decisions", S.SatDecisions);
  Out += ',';
  appendUint(Out, "propagations", S.Propagations);
  Out += ',';
  appendKey(Out, "by_purpose");
  Out += '{';
  for (size_t P = 0; P < NumPurposes; ++P) {
    if (P)
      Out += ',';
    appendKey(Out, purposeName(static_cast<Purpose>(P)));
    Out += '{';
    appendUint(Out, "queries", S.ByPurpose[P].Queries);
    Out += ',';
    appendUint(Out, "microseconds", S.ByPurpose[P].Microseconds);
    Out += '}';
  }
  Out += "}}";
}

void appendRule(std::string &Out, const RuleReport &R) {
  const PecResult &P = R.Result;
  Out += '{';
  appendString(Out, "name", R.Name);
  Out += ',';
  appendBool(Out, "proved", P.Proved);
  Out += ',';
  appendString(Out, "method", P.UsedPermute ? "permute" : "bisimulation");
  Out += ',';
  appendString(Out, "failure_reason", P.FailureReason);
  Out += ',';
  appendSeconds(Out, "seconds", P.Seconds);
  Out += ',';
  appendKey(Out, "phases");
  Out += '{';
  appendSeconds(Out, "permute_seconds", P.PermuteSeconds);
  Out += ',';
  appendSeconds(Out, "correlate_seconds", P.CorrelateSeconds);
  Out += ',';
  appendSeconds(Out, "check_seconds", P.CheckSeconds);
  Out += "},";
  appendUint(Out, "strengthenings", P.Strengthenings);
  Out += ',';
  appendUint(Out, "relation_size", P.RelationSize);
  Out += ',';
  appendUint(Out, "path_pairs", P.PathPairs);
  Out += ',';
  appendUint(Out, "pruned_path_pairs", P.PrunedPathPairs);
  Out += ',';
  appendAtp(Out, P.Atp);
  Out += '}';
}

} // namespace

std::string pec::renderJsonReport(const std::string &Command,
                                  const std::vector<RuleReport> &Rules) {
  uint64_t Proved = 0, AtpQueries = 0, AtpMicros = 0;
  double Seconds = 0;
  for (const RuleReport &R : Rules) {
    Proved += R.Result.Proved ? 1 : 0;
    AtpQueries += R.Result.Atp.Queries;
    AtpMicros += R.Result.Atp.Microseconds;
    Seconds += R.Result.Seconds;
  }

  std::string Out = "{";
  appendString(Out, "schema", "pec-report-v1");
  Out += ',';
  appendString(Out, "command", Command);
  Out += ',';
  appendKey(Out, "rules");
  Out += "[\n";
  for (size_t I = 0; I < Rules.size(); ++I) {
    if (I)
      Out += ",\n";
    appendRule(Out, Rules[I]);
  }
  Out += "\n],";
  appendKey(Out, "totals");
  Out += '{';
  appendUint(Out, "rules", Rules.size());
  Out += ',';
  appendUint(Out, "proved", Proved);
  Out += ',';
  appendUint(Out, "failed", Rules.size() - Proved);
  Out += ',';
  appendSeconds(Out, "seconds", Seconds);
  Out += ',';
  appendUint(Out, "atp_queries", AtpQueries);
  Out += ',';
  appendUint(Out, "atp_microseconds", AtpMicros);
  Out += "}}\n";
  return Out;
}

std::string pec::renderStatsTable(const std::vector<RuleReport> &Rules) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "%-30s %-7s %8s %8s %8s %8s | %6s %6s %6s %6s %6s | %5s\n",
                "rule", "proved", "total_s", "perm_s", "corr_s", "check_s",
                "prune", "oblig", "perm", "stren", "other", "iter");
  Out += Line;
  Out += std::string(120, '-');
  Out += '\n';

  auto PurposeCount = [](const PecResult &P, Purpose Which) {
    return P.Atp.ByPurpose[static_cast<size_t>(Which)].Queries;
  };

  PecResult Total;
  Total.Proved = true;
  for (const RuleReport &R : Rules) {
    const PecResult &P = R.Result;
    std::snprintf(
        Line, sizeof(Line),
        "%-30s %-7s %8.3f %8.3f %8.3f %8.3f | %6" PRIu64 " %6" PRIu64
        " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " | %5u\n",
        R.Name.c_str(), P.Proved ? "yes" : "NO", P.Seconds,
        P.PermuteSeconds, P.CorrelateSeconds, P.CheckSeconds,
        PurposeCount(P, Purpose::PathPruning),
        PurposeCount(P, Purpose::Obligation),
        PurposeCount(P, Purpose::PermuteCondition),
        PurposeCount(P, Purpose::Strengthening),
        PurposeCount(P, Purpose::Other), P.Strengthenings);
    Out += Line;

    Total.Proved = Total.Proved && P.Proved;
    Total.Seconds += P.Seconds;
    Total.PermuteSeconds += P.PermuteSeconds;
    Total.CorrelateSeconds += P.CorrelateSeconds;
    Total.CheckSeconds += P.CheckSeconds;
    Total.Strengthenings += P.Strengthenings;
    Total.Atp.Queries += P.Atp.Queries;
    Total.Atp.Microseconds += P.Atp.Microseconds;
    for (size_t I = 0; I < NumPurposes; ++I) {
      Total.Atp.ByPurpose[I].Queries += P.Atp.ByPurpose[I].Queries;
      Total.Atp.ByPurpose[I].Microseconds += P.Atp.ByPurpose[I].Microseconds;
    }
  }
  Out += std::string(120, '-');
  Out += '\n';
  std::snprintf(
      Line, sizeof(Line),
      "%-30s %-7s %8.3f %8.3f %8.3f %8.3f | %6" PRIu64 " %6" PRIu64
      " %6" PRIu64 " %6" PRIu64 " %6" PRIu64 " | %5u\n",
      "TOTAL", Total.Proved ? "yes" : "NO", Total.Seconds,
      Total.PermuteSeconds, Total.CorrelateSeconds, Total.CheckSeconds,
      PurposeCount(Total, Purpose::PathPruning),
      PurposeCount(Total, Purpose::Obligation),
      PurposeCount(Total, Purpose::PermuteCondition),
      PurposeCount(Total, Purpose::Strengthening),
      PurposeCount(Total, Purpose::Other), Total.Strengthenings);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "%" PRIu64 " ATP queries, %.3fs inside the ATP\n",
                Total.Atp.Queries,
                static_cast<double>(Total.Atp.Microseconds) / 1e6);
  Out += Line;
  return Out;
}

//===----------------------------------------------------------------------===//
// Schema validation
//===----------------------------------------------------------------------===//

namespace {

bool failV(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

/// Requires member \p Key of kind \p K on object \p Obj.
bool requireField(const json::ValuePtr &Obj, const std::string &Path,
                  const char *Key, json::Kind K, std::string *Error) {
  json::ValuePtr V = Obj->get(Key);
  if (!V)
    return failV(Error, Path + ": missing field '" + Key + "'");
  if (V->kind() != K)
    return failV(Error, Path + ": field '" + Key + "' has the wrong type");
  return true;
}

bool validatePurposeStats(const json::ValuePtr &V, const std::string &Path,
                          std::string *Error) {
  return requireField(V, Path, "queries", json::Kind::Number, Error) &&
         requireField(V, Path, "microseconds", json::Kind::Number, Error);
}

bool validateAtp(const json::ValuePtr &Atp, const std::string &Path,
                 std::string *Error) {
  for (const char *Key :
       {"queries", "microseconds", "theory_checks", "theory_conflicts",
        "sat_conflicts", "sat_decisions", "propagations"})
    if (!requireField(Atp, Path, Key, json::Kind::Number, Error))
      return false;
  if (!requireField(Atp, Path, "by_purpose", json::Kind::Object, Error))
    return false;
  json::ValuePtr ByPurpose = Atp->get("by_purpose");
  for (size_t P = 0; P < NumPurposes; ++P) {
    const char *Name = purposeName(static_cast<Purpose>(P));
    json::ValuePtr Slice = ByPurpose->get(Name);
    if (!Slice || !Slice->isObject())
      return failV(Error, Path + ".by_purpose: missing purpose '" +
                              std::string(Name) + "'");
    if (!validatePurposeStats(Slice, Path + ".by_purpose." + Name, Error))
      return false;
  }
  return true;
}

bool validateRule(const json::ValuePtr &Rule, const std::string &Path,
                  std::string *Error) {
  if (!Rule->isObject())
    return failV(Error, Path + ": rule entries must be objects");
  if (!requireField(Rule, Path, "name", json::Kind::String, Error) ||
      !requireField(Rule, Path, "proved", json::Kind::Bool, Error) ||
      !requireField(Rule, Path, "method", json::Kind::String, Error) ||
      !requireField(Rule, Path, "failure_reason", json::Kind::String,
                    Error) ||
      !requireField(Rule, Path, "seconds", json::Kind::Number, Error) ||
      !requireField(Rule, Path, "phases", json::Kind::Object, Error) ||
      !requireField(Rule, Path, "strengthenings", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "relation_size", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "path_pairs", json::Kind::Number, Error) ||
      !requireField(Rule, Path, "pruned_path_pairs", json::Kind::Number,
                    Error) ||
      !requireField(Rule, Path, "atp", json::Kind::Object, Error))
    return false;
  const std::string &Method = Rule->get("method")->stringValue();
  if (Method != "permute" && Method != "bisimulation")
    return failV(Error, Path + ": method must be 'permute' or "
                                "'bisimulation'");
  json::ValuePtr Phases = Rule->get("phases");
  for (const char *Key :
       {"permute_seconds", "correlate_seconds", "check_seconds"})
    if (!requireField(Phases, Path + ".phases", Key, json::Kind::Number,
                      Error))
      return false;
  return validateAtp(Rule->get("atp"), Path + ".atp", Error);
}

} // namespace

bool pec::validateReport(const json::ValuePtr &Report, std::string *Error) {
  if (!Report || !Report->isObject())
    return failV(Error, "report: not a JSON object");
  if (!requireField(Report, "report", "schema", json::Kind::String, Error))
    return false;
  if (Report->get("schema")->stringValue() != "pec-report-v1")
    return failV(Error, "report: unknown schema '" +
                            Report->get("schema")->stringValue() + "'");
  if (!requireField(Report, "report", "command", json::Kind::String,
                    Error) ||
      !requireField(Report, "report", "rules", json::Kind::Array, Error) ||
      !requireField(Report, "report", "totals", json::Kind::Object, Error))
    return false;

  const auto &Rules = Report->get("rules")->array();
  for (size_t I = 0; I < Rules.size(); ++I)
    if (!validateRule(Rules[I], "rules[" + std::to_string(I) + "]", Error))
      return false;

  json::ValuePtr Totals = Report->get("totals");
  for (const char *Key : {"rules", "proved", "failed", "seconds",
                          "atp_queries", "atp_microseconds"})
    if (!requireField(Totals, "totals", Key, json::Kind::Number, Error))
      return false;

  // Cross-check: the totals row must agree with the per-rule entries (the
  // acceptance criterion that the JSON matches the human-readable output).
  uint64_t Proved = 0, Queries = 0;
  for (const json::ValuePtr &Rule : Rules) {
    Proved += Rule->get("proved")->boolValue() ? 1 : 0;
    Queries +=
        static_cast<uint64_t>(Rule->get("atp")->get("queries")->numberValue());
  }
  if (static_cast<uint64_t>(Totals->get("rules")->numberValue()) !=
      Rules.size())
    return failV(Error, "totals.rules disagrees with the rules array");
  if (static_cast<uint64_t>(Totals->get("proved")->numberValue()) != Proved)
    return failV(Error, "totals.proved disagrees with the rules array");
  if (static_cast<uint64_t>(Totals->get("atp_queries")->numberValue()) !=
      Queries)
    return failV(Error, "totals.atp_queries disagrees with the rules array");
  return true;
}
