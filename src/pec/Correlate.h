//===- Correlate.h - Correlation relation generation ------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Correlate module (paper Sec. 4): generates a correlation relation
/// seeded with `s1 = s2` at the entry/exit pair and at every reachable pair
/// of statement-meta-variable locations (Formula 2), with each entry's
/// predicate strengthened by branch-condition context (the paper's
/// `Cond(l1, l2) = Post(l1) && Post(l2) && s1 = s2`).
///
/// Post(l) is the disjunction over incoming assume-to-l paths of the branch
/// conditions that *survive* transport to l: a condition is kept only when
/// every statement between the assume and l is known (via side-condition
/// frames and eval-stability facts) to preserve its value. This is a sound
/// weakening of the paper's SP-based Post; the Checker's iterative
/// strengthening recovers anything it misses.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_CORRELATE_H
#define PEC_PEC_CORRELATE_H

#include "cfg/Cfg.h"
#include "logic/Lowering.h"
#include "pec/Facts.h"
#include "pec/Relation.h"

namespace pec {

/// Available-condition analysis: a forward dataflow computing, for every
/// location, the branch conditions and assignment equalities that hold on
/// *every* path reaching it — the realization of the paper's Post. Loop
/// heads receive exactly the loop-invariant conditions (the meet over the
/// entry and back edges).
class ConditionFlow {
public:
  ConditionFlow(const Cfg &G, const ProofContext &Ctx);

  /// Conditions valid at \p L, lowered at state constant \p StateConst.
  FormulaPtr postCondition(Location L, Lowering &Low,
                           TermId StateConst) const;

  /// The raw condition set (for tests).
  const std::vector<ExprPtr> &conditionsAt(Location L) const {
    return CondsAt[L];
  }

private:
  std::vector<std::vector<ExprPtr>> CondsAt;
};

/// Generates the correlation relation for CFGs \p P1 (original) and \p P2
/// (transformed). \p S1 and \p S2 are the designated state constants the
/// predicates range over.
CorrelationRelation correlate(const Cfg &P1, const Cfg &P2,
                              const ProofContext &Ctx, Lowering &Low,
                              TermId S1, TermId S2, const ConditionFlow &F1,
                              const ConditionFlow &F2);

} // namespace pec

#endif // PEC_PEC_CORRELATE_H
