//===- Report.h - Machine-readable proof reports ----------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pec-report-v6` JSON report: one schema-stable document per proof
/// run, carrying per-rule outcomes, pipeline phase times, and the full ATP
/// statistics with the per-purpose query breakdown. Emitted by
/// `pec prove/prove-suite/tv --report json` and by `bench_figure11
/// --pec-json=FILE` (the committed `BENCH_figure11.json` perf trajectory).
/// v2 extended v1 additively: `failure_reason` is a closed taxonomy slug
/// (see pec::FailureKind), the free text moved to `failure_detail`, failed
/// rules may carry a structured `diagnosis` object, and `by_purpose` gained
/// the `minimize` slice. v3 adds two top-level run-context objects:
/// `parallelism` (jobs, hardware concurrency, wall-clock vs. summed rule
/// seconds) and `cache` (the shared AtpCache counters and hit rate; see
/// docs/PARALLELISM.md). Per-rule objects are unchanged from v2 — cache
/// hit attribution to individual rules depends on scheduling, so those
/// counters are reported only as run-level totals, keeping the per-rule
/// payload byte-deterministic. v4 adds the top-level `metrics` section:
/// the pec::metrics registry snapshot — per-purpose ATP latency
/// histograms with p50/p90/p99/max, rule prove latency, wave width,
/// cache-wait, pool-task, and SAT/theory conflict-size distributions,
/// each with a sparse `[lower_bound, count]` bucket array, plus the
/// monotonic counters. The schema is documented in
/// docs/OBSERVABILITY.md and docs/DIAGNOSTICS.md and enforced by
/// `validateReport` (which still accepts v1..v4 documents as legacy
/// input; the `check_bench_schema` CTest and the telemetry unit tests
/// both call it, so the format cannot silently drift). v5 extends the
/// `cache` section with the persistent-store counters
/// (docs/SERVING.md): `disk_hits` (hits served by entries the run loaded
/// from disk), `disk_entries` (resident entries that came from the
/// store), and the `load_ms`/`checkpoint_ms` wall times of the store
/// load and of all checkpoints. All four are deterministically zero for
/// runs without `--cache-dir`, so report byte-determinism across
/// schedules is preserved. v6 adds the equality-saturation pre-solve
/// stage (docs/SOLVER.md): a top-level `saturation` section with the run
/// totals `sat_closed` (queries the stage answered with zero SAT work),
/// `egraph_nodes` (e-nodes interned across all saturators), and
/// `rebuild_us` (wall time inside congruence rebuilds; a timing key,
/// masked like the others by the determinism harness), plus an additive
/// per-rule `atp.sat_closed` counter that rides the cache WorkDelta and
/// is therefore scheduling-independent.
///
/// `diffReports` compares two report documents — proved-set changes,
/// per-rule time and ATP-query deltas under a configurable tolerance, and
/// schema drift (a baseline on an *older* schema is a note suggesting
/// regeneration; a downgrade is a regression) — backing the
/// `pec report diff` subcommand and the `check_bench_regression` CTest
/// gate. With percentile tolerances enabled it additionally gates the
/// v4 per-purpose ATP latency percentiles (p50/p99).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_REPORT_H
#define PEC_PEC_REPORT_H

#include "pec/Pec.h"
#include "solver/AtpCache.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <string>
#include <vector>

namespace pec {

/// One proved (or failed) rule and its pipeline statistics.
struct RuleReport {
  std::string Name;
  PecResult Result;
};

/// Run-level context for the `parallelism`, `cache`, and `metrics`
/// report sections.
struct RunInfo {
  unsigned Jobs = 1;
  unsigned HardwareConcurrency = 0;
  /// Wall-clock of the whole run; contrast with the summed per-rule
  /// seconds to read off the parallel speedup.
  double WallSeconds = 0;
  bool CacheEnabled = false;
  AtpCacheStats Cache;
  /// pec::metrics registry snapshot, taken after the run quiesced (the
  /// v4 `metrics` section).
  metrics::Snapshot Metrics;
};

/// Renders the `pec-report-v6` JSON document. \p Command names the
/// producing run ("prove", "prove-suite", "tv", "bench_figure11"). When
/// \p Run is null the parallelism/cache sections describe a sequential,
/// uncached run (jobs 1, wall == summed rule seconds) and the metrics
/// section snapshots the registry at render time.
std::string renderJsonReport(const std::string &Command,
                             const std::vector<RuleReport> &Rules,
                             const RunInfo *Run = nullptr);

/// Renders the human-readable `--stats` table: per-rule phase seconds,
/// per-purpose ATP query counts, and strengthening iterations, with a
/// totals row.
std::string renderStatsTable(const std::vector<RuleReport> &Rules);

/// Renders the human-readable `--cache-stats` table: one coherent view of
/// the shared AtpCache counters — memory vs. disk hit split, misses,
/// single-flight waits, residency (with the store-loaded share), and the
/// store load/checkpoint wall times. Also backs the `pec serve` stats
/// verb, so daemon and CLI report cache health identically. The
/// scheduling-dependent wait count lives only here, never in report JSON.
std::string renderCacheStatsTable(const AtpCacheStats &C);

/// Validates a parsed report against the `pec-report-v1`..`v6` schema
/// (field presence and JSON types, per-rule and totals; v2 additionally
/// checks the failure taxonomy, `failure_detail`, the `minimize` purpose
/// slice, and any `diagnosis` objects; v3 additionally requires the
/// top-level `parallelism` and `cache` sections; v4 additionally
/// requires the `metrics` section with per-purpose ATP latency
/// percentiles; v5 additionally requires the persistent-store cache
/// fields `disk_hits`/`disk_entries`/`load_ms`/`checkpoint_ms`; v6
/// additionally requires the top-level `saturation` section). On
/// failure returns false and describes the first violation in \p Error.
bool validateReport(const json::ValuePtr &Report, std::string *Error);

/// Tolerances for diffReports. A metric regresses only when it exceeds the
/// old value by BOTH the multiplicative factor and the absolute slack, so
/// microsecond-scale jitter on near-zero baselines never trips the gate.
struct ReportDiffOptions {
  double TimeToleranceFactor = 3.0;
  double TimeSlackSeconds = 0.05;
  double QueryToleranceFactor = 2.0;
  uint64_t QuerySlack = 16;
  /// Budgets for the strengthening hot path (`atp.by_purpose.strengthening`
  /// per rule) — the loop the incremental solver exists to keep cheap, so
  /// the regression gate watches it separately from total rule time.
  double StrengtheningTimeToleranceFactor = 3.0;
  uint64_t StrengtheningTimeSlackMicros = 50000;
  double StrengtheningQueryToleranceFactor = 2.0;
  uint64_t StrengtheningQuerySlack = 8;
  /// Percentile gates over the v4 `metrics.atp_query_us` per-purpose
  /// latency percentiles. Disabled by default (factor 0): percentile
  /// shifts are environment-sensitive, so the gate is opt-in
  /// (`pec report diff --p50-tolerance ... --p99-tolerance ...`).
  double P50ToleranceFactor = 0;
  uint64_t P50SlackMicros = 20000;
  double P99ToleranceFactor = 0;
  uint64_t P99SlackMicros = 100000;
  /// Warm-cache gate (`pec report diff --min-hit-rate R`): the NEW
  /// report's run-level cache hit rate must be at least R. Disabled at 0.
  /// A new report that ran without the cache enabled fails the gate
  /// outright — a warm-run CI lane losing its `--cache-dir` flag should
  /// not pass silently. The v5 disk/memory hit split is reported as a
  /// note alongside.
  double MinHitRate = 0;
  /// Saturation-effectiveness gate (`pec report diff --min-sat-closed N`):
  /// the NEW report's run-level `saturation.sat_closed` must be at least
  /// N. Disabled at 0. A new report without a v6 `saturation` section
  /// fails the gate outright — a CI lane silently dropping the
  /// equality-saturation stage should not pass.
  uint64_t MinSatClosed = 0;
};

/// Outcome of comparing two report documents.
struct ReportDiff {
  /// Gate-failing findings: schema drift, rules that disappeared or
  /// flipped proved -> failed, time/query budget breaches.
  std::vector<std::string> Regressions;
  /// Informational findings: new rules, failed -> proved flips, deltas
  /// inside tolerance.
  std::vector<std::string> Notes;

  bool hasRegression() const { return !Regressions.empty(); }
};

/// Compares baseline \p Old against \p New rule by rule (keyed by rule
/// name): proved-set changes, per-rule wall-clock and ATP-query deltas
/// under \p Options, and schema drift (upgrades are notes, downgrades are
/// regressions). Works on any documents that passed validateReport.
ReportDiff diffReports(const json::ValuePtr &Old, const json::ValuePtr &New,
                       const ReportDiffOptions &Options = {});

/// Human-readable rendering of a diff (the `pec report diff` output).
std::string renderReportDiff(const ReportDiff &D);

} // namespace pec

#endif // PEC_PEC_REPORT_H
