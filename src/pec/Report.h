//===- Report.h - Machine-readable proof reports ----------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pec-report-v1` JSON report: one schema-stable document per proof
/// run, carrying per-rule outcomes, pipeline phase times, and the full ATP
/// statistics with the per-purpose query breakdown. Emitted by
/// `pec prove/prove-suite/tv --report json` and by `bench_figure11
/// --pec-json=FILE` (the committed `BENCH_figure11.json` perf trajectory).
/// The schema is documented in docs/OBSERVABILITY.md and enforced by
/// `validateReport` (the `check_bench_schema` CTest and the telemetry unit
/// tests both call it, so the format cannot silently drift).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_REPORT_H
#define PEC_PEC_REPORT_H

#include "pec/Pec.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace pec {

/// One proved (or failed) rule and its pipeline statistics.
struct RuleReport {
  std::string Name;
  PecResult Result;
};

/// Renders the `pec-report-v1` JSON document. \p Command names the
/// producing run ("prove", "prove-suite", "tv", "bench_figure11").
std::string renderJsonReport(const std::string &Command,
                             const std::vector<RuleReport> &Rules);

/// Renders the human-readable `--stats` table: per-rule phase seconds,
/// per-purpose ATP query counts, and strengthening iterations, with a
/// totals row.
std::string renderStatsTable(const std::vector<RuleReport> &Rules);

/// Validates a parsed report against the `pec-report-v1` schema (field
/// presence and JSON types, per-rule and totals). On failure returns false
/// and describes the first violation in \p Error.
bool validateReport(const json::ValuePtr &Report, std::string *Error);

} // namespace pec

#endif // PEC_PEC_REPORT_H
