//===- Permute.cpp - Loop reordering pre-pass ------------------------------------===//

#include "pec/Permute.h"

#include "lang/AstOps.h"
#include "pec/Facts.h"
#include "solver/Rational.h"
#include "support/Telemetry.h"

#include <optional>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Canonical loop nests
//===----------------------------------------------------------------------===//

/// One loop level with *inclusive* bounds Lo..Hi and a direction.
struct NestLevel {
  Symbol IndexVar;
  bool Descending = false;
  ExprPtr Lo;
  ExprPtr Hi;
};

/// A perfect nest `for i1 .. for in { S[e1, ..., ek] }`.
struct LoopNest {
  std::vector<NestLevel> Levels;
  StmtPtr Body; ///< MetaStmt.

  std::set<Symbol> indexVars() const {
    std::set<Symbol> Out;
    for (const NestLevel &L : Levels)
      Out.insert(L.IndexVar);
    return Out;
  }
};

/// Decomposes a `for` condition into an inclusive bound. Ascending loops
/// accept `I < X` / `I <= X`; descending accept `I > X` / `I >= X`.
std::optional<ExprPtr> boundFromCond(const ExprPtr &Cond, Symbol Index,
                                     bool Descending) {
  if (Cond->kind() != ExprKind::Binary)
    return std::nullopt;
  const ExprPtr &L = Cond->lhs();
  bool LhsIsIndex = (L->kind() == ExprKind::Var ||
                     L->kind() == ExprKind::MetaVar) &&
                    L->name() == Index;
  if (!LhsIsIndex)
    return std::nullopt;
  const ExprPtr &R = Cond->rhs();
  if (!Descending) {
    if (Cond->binOp() == BinOp::Le)
      return R;
    if (Cond->binOp() == BinOp::Lt)
      return Expr::mkBinary(BinOp::Sub, R, Expr::mkInt(1));
  } else {
    if (Cond->binOp() == BinOp::Ge)
      return R;
    if (Cond->binOp() == BinOp::Gt)
      return Expr::mkBinary(BinOp::Add, R, Expr::mkInt(1));
  }
  return std::nullopt;
}

std::optional<LoopNest> extractNest(const StmtPtr &S) {
  LoopNest Nest;
  StmtPtr Cur = S;
  while (Cur->kind() == StmtKind::For) {
    NestLevel Level;
    Level.IndexVar = Cur->indexVar();
    Level.Descending = Cur->stepDelta() < 0;
    std::optional<ExprPtr> Bound =
        boundFromCond(Cur->cond(), Level.IndexVar, Level.Descending);
    if (!Bound)
      return std::nullopt;
    if (!Level.Descending) {
      Level.Lo = Cur->init();
      Level.Hi = *Bound;
    } else {
      Level.Hi = Cur->init();
      Level.Lo = *Bound;
    }
    Nest.Levels.push_back(std::move(Level));
    Cur = Cur->body();
  }
  if (Nest.Levels.empty() || Cur->kind() != StmtKind::MetaStmt)
    return std::nullopt;
  Nest.Body = Cur;
  return Nest;
}

//===----------------------------------------------------------------------===//
// Affine forms over index variables
//===----------------------------------------------------------------------===//

/// sum(IdxCoeffs[v] * v) + Rest, where Rest is a loop-invariant term.
struct AffineForm {
  std::map<Symbol, Rational> IdxCoeffs;
  TermId Rest = InvalidTerm;
};

bool containsIndexVar(const ExprPtr &E, const std::set<Symbol> &IndexVars) {
  MetaVars MV;
  collectMetaVars(E, MV);
  for (Symbol V : MV.VarVars)
    if (IndexVars.count(V))
      return true;
  return false;
}

/// Evaluates a purely numeric expression, if it is one.
std::optional<int64_t> numericValue(const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return E->intValue();
  case ExprKind::Unary:
    if (E->unOp() == UnOp::Neg)
      if (auto V = numericValue(E->lhs()))
        return -*V;
    return std::nullopt;
  case ExprKind::Binary: {
    auto L = numericValue(E->lhs()), R = numericValue(E->rhs());
    if (!L || !R)
      return std::nullopt;
    switch (E->binOp()) {
    case BinOp::Add: return *L + *R;
    case BinOp::Sub: return *L - *R;
    case BinOp::Mul: return *L * *R;
    default: return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

/// Extracts \p E as an affine form over \p IndexVars; loop-invariant
/// subtrees are lowered at state \p S0.
std::optional<AffineForm> extractAffine(const ExprPtr &E,
                                        const std::set<Symbol> &IndexVars,
                                        Lowering &Low, TermId S0) {
  TermArena &A = Low.arena();
  if (!containsIndexVar(E, IndexVars)) {
    AffineForm F;
    F.Rest = Low.lowerExprInt(S0, E);
    if (!Low.drainPendingDefs().empty())
      return std::nullopt; // Boolean-valued bound: not affine.
    return F;
  }
  switch (E->kind()) {
  case ExprKind::MetaVar: {
    AffineForm F;
    F.IdxCoeffs[E->name()] = Rational(1);
    F.Rest = A.mkInt(0);
    return F;
  }
  case ExprKind::Binary: {
    BinOp Op = E->binOp();
    if (Op == BinOp::Add || Op == BinOp::Sub) {
      auto L = extractAffine(E->lhs(), IndexVars, Low, S0);
      auto R = extractAffine(E->rhs(), IndexVars, Low, S0);
      if (!L || !R)
        return std::nullopt;
      AffineForm F = *L;
      for (const auto &[V, C] : R->IdxCoeffs) {
        Rational &Slot = F.IdxCoeffs[V];
        Slot = Op == BinOp::Add ? Slot + C : Slot - C;
        if (Slot.isZero())
          F.IdxCoeffs.erase(V);
      }
      F.Rest = Op == BinOp::Add ? A.mkAdd(F.Rest, R->Rest)
                                : A.mkSub(F.Rest, R->Rest);
      return F;
    }
    if (Op == BinOp::Mul) {
      // One side must be numeric.
      std::optional<int64_t> K = numericValue(E->lhs());
      ExprPtr Other = E->rhs();
      if (!K) {
        K = numericValue(E->rhs());
        Other = E->lhs();
      }
      if (!K)
        return std::nullopt;
      auto Inner = extractAffine(Other, IndexVars, Low, S0);
      if (!Inner)
        return std::nullopt;
      AffineForm F;
      for (const auto &[V, C] : Inner->IdxCoeffs)
        if (!(C * Rational(*K)).isZero())
          F.IdxCoeffs[V] = C * Rational(*K);
      F.Rest = A.mkMul(A.mkInt(*K), Inner->Rest);
      return F;
    }
    return std::nullopt;
  }
  case ExprKind::Unary:
    if (E->unOp() == UnOp::Neg) {
      auto Inner = extractAffine(E->lhs(), IndexVars, Low, S0);
      if (!Inner)
        return std::nullopt;
      AffineForm F;
      for (const auto &[V, C] : Inner->IdxCoeffs)
        F.IdxCoeffs[V] = -C;
      F.Rest = A.mkNeg(Inner->Rest);
      return F;
    }
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

/// Builds the term of \p F under the index assignment \p IdxVals.
/// Fails (InvalidTerm) on non-integral coefficients.
TermId affineToTerm(const AffineForm &F,
                    const std::map<Symbol, TermId> &IdxVals, TermArena &A) {
  TermId Out = F.Rest;
  for (const auto &[V, C] : F.IdxCoeffs) {
    if (!C.isInteger())
      return InvalidTerm;
    auto It = IdxVals.find(V);
    if (It == IdxVals.end())
      return InvalidTerm;
    Out = A.mkAdd(Out, A.mkMul(A.mkInt(C.num()), It->second));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Commute evidence scanning
//===----------------------------------------------------------------------===//

/// All commute facts in the side condition, with their quantified binders.
std::vector<CommuteEvidence> scanCommutes(const SideCondPtr &C) {
  std::vector<CommuteEvidence> Out;
  std::function<void(const SideCondPtr &, std::vector<Symbol>)> Walk =
      [&](const SideCondPtr &Cond, std::vector<Symbol> Bound) {
        switch (Cond->kind()) {
        case SideCondKind::Atom:
          if (Cond->factName() == Symbol::get("Commute") &&
              Cond->args().size() == 2 && Cond->args()[0].isStmt() &&
              Cond->args()[1].isStmt())
            Out.push_back(CommuteEvidence{Bound, Cond->args()[0].S,
                                          Cond->args()[1].S,
                                          Cond->atLabel()});
          return;
        case SideCondKind::Forall: {
          for (Symbol B : Cond->boundVars())
            Bound.push_back(B);
          Walk(Cond->children()[0], Bound);
          return;
        }
        case SideCondKind::And:
          for (const SideCondPtr &Child : Cond->children())
            Walk(Child, Bound);
          return;
        default:
          return;
        }
      };
  Walk(C, {});
  return Out;
}

/// True if the hole arguments of \p S are bare, pairwise distinct variable
/// meta-variables.
bool holesAreGeneric(const StmtPtr &S, std::set<Symbol> &VarsOut) {
  for (const ExprPtr &H : S->holeArgs()) {
    if (H->kind() != ExprKind::MetaVar)
      return false;
    if (!VarsOut.insert(H->name()).second)
      return false;
  }
  return true;
}

/// Looks for quantified evidence that all instance pairs of \p NameA and
/// \p NameB commute: `Commute(NameA[K...], NameB[L...])` (either order)
/// where all hole arguments are generic variables.
bool haveAllPairsCommute(const std::vector<CommuteEvidence> &Evidence,
                         Symbol NameA, Symbol NameB) {
  for (const CommuteEvidence &Ev : Evidence) {
    Symbol A = Ev.A->metaName(), B = Ev.B->metaName();
    if (!((A == NameA && B == NameB) || (A == NameB && B == NameA)))
      continue;
    std::set<Symbol> Vars;
    if (!holesAreGeneric(Ev.A, Vars) || !holesAreGeneric(Ev.B, Vars))
      continue;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// The permute proof for perfect nests
//===----------------------------------------------------------------------===//

class PermuteProver {
public:
  PermuteProver(const Rule &R, Atp &Prover)
      : R(R), Prover(Prover), A(Prover.arena()), Low(A, Env) {
    Env.Kinds.collectFrom(R.Before);
    Env.Kinds.collectFrom(R.After);
    S0 = A.mkSymConst(Symbol::get("s$perm0"), Sort::State);
    Evidence = scanCommutes(R.Cond);
  }

  PermuteOutcome run() {
    PermuteOutcome Out;
    // Every prover query below establishes a Permute Theorem condition.
    telemetry::PurposeScope Tag(telemetry::Purpose::PermuteCondition);
    StmtPtr Before = normalizeStmt(R.Before);
    StmtPtr After = normalizeStmt(R.After);

    // Shape (a): perfect nest on both sides.
    std::optional<LoopNest> N1, N2;
    {
      telemetry::Span CanonSpan("permute.canonicalize", "permute");
      N1 = extractNest(Before);
      N2 = extractNest(After);
    }
    if (N1 && N2) {
      Out.Attempted = true;
      proveNestPair(*N1, *N2, Out);
      return Out;
    }

    // Shape (b): fission/fusion between Seq[loop, loop] and loop{S1;S2}.
    if (auto Pair = splitShape(Before)) {
      if (auto Fused = fusedShape(After)) {
        Out.Attempted = true;
        proveFusion(Pair->first, Pair->second, *Fused, Out);
        return Out;
      }
    }
    if (auto Fused = fusedShape(Before)) {
      if (auto Pair = splitShape(After)) {
        Out.Attempted = true;
        // Distribution: same proof with the roles swapped.
        proveFusion(Pair->first, Pair->second, *Fused, Out);
        return Out;
      }
    }
    return Out;
  }

private:
  FormulaPtr inDomain(const std::vector<NestLevel> &Levels,
                      const std::set<Symbol> &IdxVars,
                      const std::map<Symbol, TermId> &IdxVals) {
    std::vector<FormulaPtr> Conds;
    for (const NestLevel &L : Levels) {
      auto LoA = extractAffine(L.Lo, IdxVars, Low, S0);
      auto HiA = extractAffine(L.Hi, IdxVars, Low, S0);
      if (!LoA || !HiA)
        return nullptr;
      TermId Lo = affineToTerm(*LoA, IdxVals, A);
      TermId Hi = affineToTerm(*HiA, IdxVals, A);
      TermId I = IdxVals.at(L.IndexVar);
      if (Lo == InvalidTerm || Hi == InvalidTerm)
        return nullptr;
      Conds.push_back(Formula::mkLe(A, Lo, I));
      Conds.push_back(Formula::mkLe(A, I, Hi));
    }
    return Formula::mkAnd(std::move(Conds));
  }

  /// Lexicographic "executes before": position \p X before position \p Y,
  /// where both are tuples of terms in the level order of \p Levels.
  FormulaPtr lexBefore(const std::vector<NestLevel> &Levels,
                       const std::vector<TermId> &X,
                       const std::vector<TermId> &Y) {
    std::vector<FormulaPtr> Disjuncts;
    for (size_t K = 0; K < Levels.size(); ++K) {
      std::vector<FormulaPtr> Conjuncts;
      for (size_t M = 0; M < K; ++M)
        Conjuncts.push_back(Formula::mkEq(A, X[M], Y[M]));
      Conjuncts.push_back(Levels[K].Descending
                              ? Formula::mkLt(A, Y[K], X[K])
                              : Formula::mkLt(A, X[K], Y[K]));
      Disjuncts.push_back(Formula::mkAnd(std::move(Conjuncts)));
    }
    return Formula::mkOr(std::move(Disjuncts));
  }

  std::vector<TermId> freshIndexTuple(const char *Prefix, size_t N) {
    std::vector<TermId> Out;
    for (size_t K = 0; K < N; ++K)
      Out.push_back(A.mkSymConst(
          Symbol::get(std::string(Prefix) + std::to_string(K) + "$" +
                      std::to_string(FreshCounter)),
          Sort::Int));
    return Out;
  }

  void proveNestPair(const LoopNest &N1, const LoopNest &N2,
                     PermuteOutcome &Out) {
    ++FreshCounter;
    size_t Depth = N1.Levels.size();
    if (N2.Levels.size() != Depth) {
      Out.Note = "nests have different depths";
      return;
    }
    if (N1.Body->metaName() != N2.Body->metaName() ||
        N1.Body->holeArgs().size() != N2.Body->holeArgs().size()) {
      Out.Note = "loop bodies do not match";
      return;
    }
    size_t Holes = N1.Body->holeArgs().size();
    if (Holes != Depth) {
      Out.Note = "body holes must cover the index variables";
      return;
    }
    // The original body must be S[i1, ..., in] in level order.
    for (size_t K = 0; K < Depth; ++K) {
      const ExprPtr &H = N1.Body->holeArgs()[K];
      if (H->kind() != ExprKind::MetaVar ||
          H->name() != N1.Levels[K].IndexVar) {
        Out.Note = "original body holes must be the index variables";
        return;
      }
    }

    std::set<Symbol> Idx1 = N1.indexVars();
    std::set<Symbol> Idx2 = N2.indexVars();

    // F: transformed iteration j |-> original instance, read off the
    // transformed hole arguments.
    telemetry::Span InferSpan("permute.inferMapping", "permute");
    std::vector<AffineForm> F;
    for (const ExprPtr &H : N2.Body->holeArgs()) {
      auto Form = extractAffine(H, Idx2, Low, S0);
      if (!Form) {
        Out.Note = "transformed body holes are not affine";
        return;
      }
      F.push_back(std::move(*Form));
    }

    // Invert F by rational Gaussian elimination: solve
    //   i_k = sum_l M[k][l] * j_l + r_k   for j.
    std::vector<Symbol> J;
    for (const NestLevel &L : N2.Levels)
      J.push_back(L.IndexVar);
    std::vector<std::vector<Rational>> M(Depth,
                                         std::vector<Rational>(Depth));
    for (size_t K = 0; K < Depth; ++K)
      for (size_t L = 0; L < Depth; ++L) {
        auto It = F[K].IdxCoeffs.find(J[L]);
        M[K][L] = It == F[K].IdxCoeffs.end() ? Rational(0) : It->second;
      }
    // Augment with the identity and eliminate.
    std::vector<std::vector<Rational>> Inv(Depth,
                                           std::vector<Rational>(Depth));
    for (size_t K = 0; K < Depth; ++K)
      Inv[K][K] = Rational(1);
    for (size_t Col = 0; Col < Depth; ++Col) {
      size_t Pivot = Col;
      while (Pivot < Depth && M[Pivot][Col].isZero())
        ++Pivot;
      if (Pivot == Depth) {
        Out.Note = "index mapping is singular";
        return;
      }
      std::swap(M[Pivot], M[Col]);
      std::swap(Inv[Pivot], Inv[Col]);
      Rational P = M[Col][Col];
      for (size_t L = 0; L < Depth; ++L) {
        M[Col][L] = M[Col][L] / P;
        Inv[Col][L] = Inv[Col][L] / P;
      }
      for (size_t Row = 0; Row < Depth; ++Row) {
        if (Row == Col || M[Row][Col].isZero())
          continue;
        Rational Factor = M[Row][Col];
        for (size_t L = 0; L < Depth; ++L) {
          M[Row][L] = M[Row][L] - Factor * M[Col][L];
          Inv[Row][L] = Inv[Row][L] - Factor * Inv[Col][L];
        }
      }
    }
    for (size_t K = 0; K < Depth; ++K)
      for (size_t L = 0; L < Depth; ++L)
        if (!Inv[K][L].isInteger()) {
          Out.Note = "inverse index mapping is not integral";
          return;
        }

    // As term-level functions.
    auto ApplyF = [&](const std::vector<TermId> &JVals) {
      std::map<Symbol, TermId> Map;
      for (size_t L = 0; L < Depth; ++L)
        Map[J[L]] = JVals[L];
      std::vector<TermId> Out2;
      for (size_t K = 0; K < Depth; ++K)
        Out2.push_back(affineToTerm(F[K], Map, A));
      return Out2;
    };
    auto ApplyFInv = [&](const std::vector<TermId> &IVals) {
      // j_l = sum_k Inv[l][k] * (i_k - r_k).
      std::vector<TermId> Out2;
      for (size_t L = 0; L < Depth; ++L) {
        TermId Acc = A.mkInt(0);
        for (size_t K = 0; K < Depth; ++K) {
          if (Inv[L][K].isZero())
            continue;
          TermId Diff = A.mkSub(IVals[K], F[K].Rest);
          Acc = A.mkAdd(Acc, A.mkMul(A.mkInt(Inv[L][K].num()), Diff));
        }
        Out2.push_back(Acc);
      }
      return Out2;
    };

    InferSpan.end();

    // Skolem index tuples.
    std::vector<TermId> IVals = freshIndexTuple("i$", Depth);
    std::vector<TermId> JVals = freshIndexTuple("j$", Depth);
    std::map<Symbol, TermId> IMap, JMap;
    for (size_t K = 0; K < Depth; ++K) {
      IMap[N1.Levels[K].IndexVar] = IVals[K];
      JMap[N2.Levels[K].IndexVar] = JVals[K];
    }
    FormulaPtr InD1 = inDomain(N1.Levels, Idx1, IMap);
    FormulaPtr InD2 = inDomain(N2.Levels, Idx2, JMap);
    if (!InD1 || !InD2) {
      Out.Note = "loop bounds are not affine";
      return;
    }

    // Condition 1: j in D2 => F(j) in D1.
    {
      telemetry::Span CondSpan("permute.condition1.FMapsD2IntoD1",
                               "permute");
      std::vector<TermId> FJ = ApplyF(JVals);
      std::map<Symbol, TermId> FMap;
      for (size_t K = 0; K < Depth; ++K)
        FMap[N1.Levels[K].IndexVar] = FJ[K];
      FormulaPtr FInD1 = inDomain(N1.Levels, Idx1, FMap);
      if (!Prover.query(AtpQuery::validity(Formula::mkImplies(InD2, FInD1)))
               .Verdict) {
        Out.Note = "condition 1 (F maps D2 into D1) failed";
        return;
      }
    }
    // Condition 2: i in D1 => F^-1(i) in D2.
    {
      telemetry::Span CondSpan("permute.condition2.FInvMapsD1IntoD2",
                               "permute");
      std::vector<TermId> FInvI = ApplyFInv(IVals);
      std::map<Symbol, TermId> GMap;
      for (size_t K = 0; K < Depth; ++K)
        GMap[N2.Levels[K].IndexVar] = FInvI[K];
      FormulaPtr GInD2 = inDomain(N2.Levels, Idx2, GMap);
      if (!Prover.query(AtpQuery::validity(Formula::mkImplies(InD1, GInD2)))
               .Verdict) {
        Out.Note = "condition 2 (F^-1 maps D1 into D2) failed";
        return;
      }
    }
    // Conditions 3 and 4: round trips are identities.
    {
      telemetry::Span CondSpan("permute.condition3.roundTripJ", "permute");
      std::vector<TermId> Round = ApplyFInv(ApplyF(JVals));
      std::vector<FormulaPtr> Eqs;
      for (size_t K = 0; K < Depth; ++K)
        Eqs.push_back(Formula::mkEq(A, Round[K], JVals[K]));
      if (!Prover.query(AtpQuery::validity(Formula::mkAnd(std::move(Eqs))))
               .Verdict) {
        Out.Note = "condition 3 (F^-1 after F) failed";
        return;
      }
    }
    {
      telemetry::Span CondSpan("permute.condition4.roundTripI", "permute");
      std::vector<TermId> Round2 = ApplyF(ApplyFInv(IVals));
      std::vector<FormulaPtr> Eqs2;
      for (size_t K = 0; K < Depth; ++K)
        Eqs2.push_back(Formula::mkEq(A, Round2[K], IVals[K]));
      if (!Prover.query(AtpQuery::validity(Formula::mkAnd(std::move(Eqs2))))
               .Verdict) {
        Out.Note = "condition 4 (F after F^-1) failed";
        return;
      }
    }
    // Condition 5: reordered pairs must commute.
    {
      telemetry::Span CondSpan("permute.condition5.reorderedPairsCommute",
                               "permute");
      std::vector<TermId> IVals2 = freshIndexTuple("ip$", Depth);
      std::map<Symbol, TermId> IMap2;
      for (size_t K = 0; K < Depth; ++K)
        IMap2[N1.Levels[K].IndexVar] = IVals2[K];
      FormulaPtr InD1b = inDomain(N1.Levels, Idx1, IMap2);
      FormulaPtr Reordered = Formula::mkAnd(
          {InD1, InD1b, lexBefore(N1.Levels, IVals, IVals2),
           lexBefore(N2.Levels, ApplyFInv(IVals2), ApplyFInv(IVals))});
      if (Prover.query(AtpQuery::satisfiability(Reordered)).Verdict) {
        // Some pair is executed in the opposite order: need commutativity.
        if (!haveAllPairsCommute(Evidence, N1.Body->metaName(),
                                 N1.Body->metaName())) {
          Out.Note = "instances are reordered and no quantified Commute "
                     "side condition covers them";
          return;
        }
      }
    }

    finishReplacement(Out, Idx1, Idx2);
  }

  std::optional<std::pair<LoopNest, LoopNest>> splitShape(const StmtPtr &S) {
    if (S->kind() != StmtKind::Seq || S->stmts().size() != 2)
      return std::nullopt;
    auto N1 = extractNest(S->stmts()[0]);
    auto N2 = extractNest(S->stmts()[1]);
    if (!N1 || !N2 || N1->Levels.size() != 1 || N2->Levels.size() != 1)
      return std::nullopt;
    return std::make_pair(std::move(*N1), std::move(*N2));
  }

  /// `for i { S1[i]; S2[i]; }` — a fused pair.
  std::optional<std::pair<LoopNest, LoopNest>> fusedShape(const StmtPtr &S) {
    if (S->kind() != StmtKind::For)
      return std::nullopt;
    StmtPtr Body = normalizeStmt(S->body());
    if (Body->kind() != StmtKind::Seq || Body->stmts().size() != 2)
      return std::nullopt;
    const StmtPtr &B1 = Body->stmts()[0];
    const StmtPtr &B2 = Body->stmts()[1];
    if (B1->kind() != StmtKind::MetaStmt || B2->kind() != StmtKind::MetaStmt)
      return std::nullopt;
    auto MakeNest = [&](const StmtPtr &B) -> std::optional<LoopNest> {
      StmtPtr Single = Stmt::mkFor(S->indexVar(), S->indexIsMeta(), S->init(),
                                   S->cond(), S->stepDelta(), B);
      return extractNest(Single);
    };
    auto N1 = MakeNest(B1);
    auto N2 = MakeNest(B2);
    if (!N1 || !N2)
      return std::nullopt;
    return std::make_pair(std::move(*N1), std::move(*N2));
  }

  /// Fusion: Seq[loop S1, loop S2] vs fused loop {S1; S2} with identical
  /// ascending bounds and bare index holes.
  void proveFusion(const LoopNest &L1, const LoopNest &L2,
                   const std::pair<LoopNest, LoopNest> &Fused,
                   PermuteOutcome &Out) {
    ++FreshCounter;
    auto CheckLoop = [&](const LoopNest &N) {
      return N.Levels.size() == 1 && !N.Levels[0].Descending &&
             N.Body->holeArgs().size() == 1 &&
             N.Body->holeArgs()[0]->kind() == ExprKind::MetaVar &&
             N.Body->holeArgs()[0]->name() == N.Levels[0].IndexVar;
    };
    if (!CheckLoop(L1) || !CheckLoop(L2) || !CheckLoop(Fused.first) ||
        !CheckLoop(Fused.second)) {
      Out.Note = "fusion loops must be simple ascending loops over their "
                 "index variable";
      return;
    }
    if (L1.Body->metaName() != Fused.first.Body->metaName() ||
        L2.Body->metaName() != Fused.second.Body->metaName()) {
      Out.Note = "fusion loop bodies do not match";
      return;
    }
    // Bounds must agree pairwise (checked semantically via the ATP).
    auto BoundsEq = [&](const ExprPtr &X, const ExprPtr &Y) {
      TermId TX = Low.lowerExprInt(S0, X);
      TermId TY = Low.lowerExprInt(S0, Y);
      Low.drainPendingDefs();
      return Prover.query(AtpQuery::validity(Formula::mkEq(A, TX, TY)))
          .Verdict;
    };
    if (!BoundsEq(L1.Levels[0].Lo, L2.Levels[0].Lo) ||
        !BoundsEq(L1.Levels[0].Hi, L2.Levels[0].Hi) ||
        !BoundsEq(L1.Levels[0].Lo, Fused.first.Levels[0].Lo) ||
        !BoundsEq(L1.Levels[0].Hi, Fused.first.Levels[0].Hi)) {
      Out.Note = "fusion loop bounds differ";
      return;
    }
    // Reordered pairs are S2(i') before S1(i) for i' < i: cross commute.
    if (!haveAllPairsCommute(Evidence, L1.Body->metaName(),
                             L2.Body->metaName())) {
      Out.Note = "fusion requires a quantified Commute(S1[.], S2[.]) side "
                 "condition";
      return;
    }
    std::set<Symbol> Dead = {L1.Levels[0].IndexVar, L2.Levels[0].IndexVar,
                             Fused.first.Levels[0].IndexVar};
    finishReplacement(Out, Dead, Dead);
  }

  void finishReplacement(PermuteOutcome &Out, const std::set<Symbol> &Idx1,
                         const std::set<Symbol> &Idx2) {
    Symbol Fresh = Symbol::get("Sperm$" + std::to_string(FreshCounter));
    MetaStmtInfo Info;
    for (Symbol V : Idx1) {
      Info.MaskedVars.insert(V);
      Info.PreservedVars.insert(V);
      Out.RequiredDeadVars.insert(V);
    }
    for (Symbol V : Idx2) {
      Info.MaskedVars.insert(V);
      Info.PreservedVars.insert(V);
      Out.RequiredDeadVars.insert(V);
    }
    Out.ExtraStmtInfo[Fresh] = std::move(Info);
    Out.NewBefore = Stmt::mkMetaStmt(Fresh);
    Out.NewAfter = Stmt::mkMetaStmt(Fresh);
    Out.Proved = true;
    Out.Note = "loops proven equivalent by the Permute Theorem";
  }

  const Rule &R;
  Atp &Prover;
  TermArena &A;
  LoweringEnv Env;
  Lowering Low;
  TermId S0 = InvalidTerm;
  std::vector<CommuteEvidence> Evidence;
  uint64_t FreshCounter = 0;
};

} // namespace

PermuteOutcome pec::runPermute(const Rule &R, Atp &Prover) {
  PermuteProver P(R, Prover);
  return P.run();
}
