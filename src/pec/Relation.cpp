//===- Relation.cpp - Correlation relations -------------------------------------===//

#include "pec/Relation.h"

#include <sstream>

using namespace pec;

size_t CorrelationRelation::add(Location L1, Location L2, FormulaPtr Pred) {
  auto [It, Inserted] = Index.emplace(std::make_pair(L1, L2), Entries.size());
  if (!Inserted)
    return It->second;
  Entries.push_back(RelEntry{L1, L2, std::move(Pred)});
  ++OrigLocs[L1];
  ++TransLocs[L2];
  return Entries.size() - 1;
}

int32_t CorrelationRelation::find(Location L1, Location L2) const {
  auto It = Index.find(std::make_pair(L1, L2));
  return It == Index.end() ? -1 : static_cast<int32_t>(It->second);
}

std::vector<char>
CorrelationRelation::origStopMask(uint32_t NumLocations) const {
  std::vector<char> Mask(NumLocations, 0);
  for (const auto &[L, Count] : OrigLocs) {
    (void)Count;
    Mask[L] = 1;
  }
  return Mask;
}

std::vector<char>
CorrelationRelation::transStopMask(uint32_t NumLocations) const {
  std::vector<char> Mask(NumLocations, 0);
  for (const auto &[L, Count] : TransLocs) {
    (void)Count;
    Mask[L] = 1;
  }
  return Mask;
}

std::string CorrelationRelation::str(const TermArena &A) const {
  std::ostringstream OS;
  for (size_t I = 0; I < Entries.size(); ++I)
    OS << "  #" << I << " (" << Entries[I].L1 << ", " << Entries[I].L2
       << "): " << Entries[I].Pred->str(A) << "\n";
  return OS.str();
}
