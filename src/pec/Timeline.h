//===- Timeline.h - Run-journal reconstruction and analysis -----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec report timeline`: reads a `pec-journal-v1` run journal (written by
/// `pec prove --journal FILE`, see support/Trace.h) and reconstructs the
/// causal span DAG — run -> rule -> check -> wave -> obligation -> query —
/// to answer the questions aggregate metrics cannot:
///
///   * **Critical path**: the causal chain whose length lower-bounds
///     wall-clock at *any* `--jobs`. Fork-join recurrence over the span
///     tree: CP(s) = max(0, D(s) - sum of child durations) + max over
///     children of CP(c), with CP(leaf) = D(leaf). Interval containment
///     (children end before their parent) gives CP(s) <= D(s) by
///     induction, so the reported total can never exceed wall-clock.
///   * **Per-rule wall vs. CPU**: a rule's wall time is its span
///     duration; its CPU time sums the *self* durations over its causal
///     subtree, excluding `cache.wait` spans (blocked, not computing).
///     Self time is computed by per-thread temporal nesting, not causal
///     parentage: with a helping work-stealing pool, a thread blocked in
///     a wave's join loop executes unrelated tasks, and those appear as
///     temporally nested spans on the same tid — subtracting them keeps
///     every microsecond attributed to exactly one span.
///   * **Scheduler utilization and wasted work**: summed self time is a
///     per-thread interval union, so busy / (threads x wall) is a true
///     <= 100% utilization; plus single-flight cache waits, strengthening
///     re-checks, re-checks skipped via unsat cores, and idle capacity.
///
/// Validation (`validateJournal`) enforces the structural invariants the
/// trace layer guarantees — every end matches a begin, every parent
/// exists and was begun earlier (ids are allocation-ordered, so
/// parent-id < span-id doubles as an acyclicity proof), intervals nest —
/// and is deliberately deterministic: no raw timings are compared, so the
/// journal well-formedness test is stable under TSan and load.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_TIMELINE_H
#define PEC_PEC_TIMELINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pec {
namespace timeline {

/// One reconstructed span (a begin/end line pair).
struct JournalSpan {
  uint64_t Id = 0;
  uint64_t Trace = 0;
  uint64_t Parent = 0; ///< 0 for a root span.
  uint64_t Tid = 0;
  std::string Name;
  uint64_t BeginUs = 0;
  uint64_t EndUs = 0;
  bool Ended = false;
  std::map<std::string, std::string> Attrs;
};

/// One instant ("i") line, attached to its enclosing span (0 = none).
struct JournalInstant {
  uint64_t SpanId = 0;
  uint64_t Tid = 0;
  uint64_t Ts = 0;
  std::string Name;
  std::map<std::string, std::string> Attrs;
};

struct Journal {
  std::string Schema;
  std::vector<JournalSpan> Spans; ///< In begin order (file order).
  std::map<uint64_t, size_t> ById;
  std::vector<JournalInstant> Instants;
};

/// Parses the JSONL text of a journal file. Fails (false, *Error set) on
/// malformed JSON, a missing or unknown schema header, an end or instant
/// referencing an unknown span, or a duplicate begin/end.
bool parseJournal(const std::string &Text, Journal &Out,
                  std::string *Error = nullptr);

/// Deterministic structural validation (see file comment). Returns false
/// with *Error naming the first violated invariant.
bool validateJournal(const Journal &J, std::string *Error = nullptr);

/// One hop of the critical path, root first.
struct CriticalPathStep {
  uint64_t SpanId = 0;
  std::string Name;
  std::string Detail; ///< Attribution summary (rule name, purpose, ...).
  uint64_t SelfUs = 0; ///< This hop's own contribution to the path.
};

/// Wall/CPU attribution for one rule proof.
struct RuleAttribution {
  std::string Rule;
  uint64_t WallUs = 0; ///< Duration of the rule span.
  uint64_t CpuUs = 0;  ///< Summed self time of its causal subtree.
  uint64_t Queries = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t Waves = 0;
  uint64_t Obligations = 0;
  bool Proved = false;
};

struct TimelineAnalysis {
  uint64_t WallUs = 0; ///< max end - min begin over all spans.
  uint64_t Jobs = 0;   ///< From the run span's "jobs" attr (0: unknown).
  uint64_t Threads = 0; ///< Distinct recording tids (workers + main).
  uint64_t Spans = 0;
  uint64_t Queries = 0;

  uint64_t CriticalPathUs = 0;
  std::vector<CriticalPathStep> CriticalPath;

  std::vector<RuleAttribution> Rules; ///< Sorted by wall time, desc.

  uint64_t BusyUs = 0;    ///< Summed self time (minus cache waits).
  double Utilization = 0; ///< Busy / (Threads x Wall).
  uint64_t IdleUs = 0;    ///< Threads x Wall - Busy.

  // Wasted-work accounting.
  uint64_t CacheWaits = 0;   ///< Single-flight waits entered.
  uint64_t CacheWaitUs = 0;  ///< Total time blocked in them.
  uint64_t Rechecks = 0;     ///< Strengthening re-check obligations run.
  uint64_t RecheckUs = 0;    ///< Total time spent re-checking.
  uint64_t CoreSkips = 0;    ///< Re-checks retired by an unsat core.
  uint64_t Strengthenings = 0;
};

/// Computes the analysis; expects a validated journal.
TimelineAnalysis analyzeTimeline(const Journal &J);

/// Human-readable report (the `pec report timeline` default output).
std::string renderTimelineText(const TimelineAnalysis &A);

/// Machine-readable rendering (`pec report timeline --json`), schema
/// `pec-timeline-v1`.
std::string renderTimelineJson(const TimelineAnalysis &A);

} // namespace timeline
} // namespace pec

#endif // PEC_PEC_TIMELINE_H
