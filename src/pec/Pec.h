//===- Pec.h - Parameterized Equivalence Checking driver --------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level PEC pipeline (paper Fig. 8):
///
/// \code
///   function PEC(p1, p2, f)
///     (p1', p2') := Permute(p1, p2, f)
///     R          := Correlate(p1', p2')
///     return Check(R, p1', p2', f)
/// \endcode
///
/// `proveRule` proves a parameterized rewrite rule correct once and for
/// all; `proveEquivalence` proves two *concrete* programs equivalent, which
/// is classic translation validation (the paper's observation that PEC
/// subsumes it, Sec. 2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_PEC_H
#define PEC_PEC_PEC_H

#include "lang/Meaning.h"
#include "lang/Rule.h"
#include "pec/Checker.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace pec {

class AtpCache;

struct PecOptions {
  CheckerOptions Checker;
  bool UsePermute = true;
  AtpOptions Atp;
  /// User-declared fact meanings (paper Fig. 4), additional to the
  /// built-in catalog.
  std::vector<FactDecl> UserFacts;
  /// Capture a FailureDiagnosis (counterexample model, minimized
  /// obligation, CFG/correlation DOT) when a proof fails. Overrides
  /// Checker.Diagnose.
  bool Diagnose = true;
  /// Shared ATP memoization cache (AtpCache.h). Safe to share across
  /// concurrently proved rules; must outlive the proofs.
  AtpCache *Cache = nullptr;
  /// Thread pool for the Checker's obligation fan-out within this rule
  /// (copied into Checker.Pool). Rule-level parallelism is the caller's
  /// business: proveRule itself is thread-safe when each call gets its
  /// own PecResult — all per-proof state (TermArena, Atp, relation) is
  /// local (docs/PARALLELISM.md).
  ThreadPool *Pool = nullptr;
};

struct PecResult {
  bool Proved = false;
  bool UsedPermute = false;
  /// Failure taxonomy slug source (see failureKindName); None when proved.
  FailureKind Kind = FailureKind::None;
  /// Free-text elaboration of the failure (the pec-report-v2
  /// `failure_detail` field).
  std::string FailureReason;
  /// Structured failure explanation (non-null when PecOptions::Diagnose
  /// and the proof failed).
  std::shared_ptr<FailureDiagnosis> Diagnosis;
  /// Number of theorem-prover queries (the paper's "#ATP calls").
  uint64_t AtpQueries = 0;
  /// Wall-clock seconds for the whole pipeline.
  double Seconds = 0;
  /// Full prover statistics, including the per-purpose query/time
  /// breakdown (path pruning vs. proof obligations vs. permute conditions
  /// vs. strengthening re-checks).
  AtpStats Atp;
  /// Wall-clock per pipeline phase (Fig. 8's three stages).
  double PermuteSeconds = 0;
  double CorrelateSeconds = 0;
  double CheckSeconds = 0;
  uint32_t Strengthenings = 0;
  size_t RelationSize = 0;
  size_t PathPairs = 0;
  size_t PrunedPathPairs = 0;
  /// Loop index variables the execution engine must verify dead after the
  /// rewritten fragment (produced by the Permute module).
  std::set<Symbol> RequiredDeadVars;
};

/// Proves rewrite rule \p R semantics-preserving, once and for all.
PecResult proveRule(const Rule &R, const PecOptions &Options = {});

/// Translation validation: proves two concrete programs equivalent.
PecResult proveEquivalence(const StmtPtr &Original, const StmtPtr &Transformed,
                           const PecOptions &Options = {});

} // namespace pec

#endif // PEC_PEC_PEC_H
