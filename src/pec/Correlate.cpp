//===- Correlate.cpp - Correlation relation generation --------------------------===//

#include "pec/Correlate.h"

#include "lang/Printer.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace pec;

//===----------------------------------------------------------------------===//
// Available-condition dataflow (the paper's Post)
//===----------------------------------------------------------------------===//

namespace {

/// Stable key for condition-set operations.
std::string condKey(const ExprPtr &E) { return printExpr(E); }

/// Applies one atomic statement to a condition set.
void transferAtom(const StmtPtr &Atom, const ProofContext &Ctx,
                  std::map<std::string, ExprPtr> &Conds) {
  if (Atom->kind() == StmtKind::Assume) {
    Conds.emplace(condKey(Atom->cond()), Atom->cond());
    return;
  }
  if (Atom->kind() == StmtKind::Skip)
    return;
  // Kill conditions the atom may disturb.
  for (auto It = Conds.begin(); It != Conds.end();) {
    if (Ctx.atomPreservesExpr(Atom, It->second))
      ++It;
    else
      It = Conds.erase(It);
  }
  // `x := e` establishes `x == e` afterwards, provided the assignment does
  // not disturb `e` itself (or the index, for array writes).
  if (Atom->kind() == StmtKind::Assign) {
    const LValue &T = Atom->target();
    bool SelfStable = Ctx.atomPreservesExpr(Atom, Atom->value()) &&
                      (!T.Index || Ctx.atomPreservesExpr(Atom, T.Index));
    if (SelfStable) {
      ExprPtr Lhs = T.isArrayElem()
                        ? Expr::mkArrayRead(T.Name, T.IsMeta, T.Index)
                    : T.IsMeta ? Expr::mkMetaVar(T.Name)
                               : Expr::mkVar(T.Name);
      ExprPtr Eq = Expr::mkBinary(BinOp::Eq, std::move(Lhs), Atom->value());
      Conds.emplace(condKey(Eq), std::move(Eq));
    }
  }
}

} // namespace

ConditionFlow::ConditionFlow(const Cfg &G, const ProofContext &Ctx) {
  // The branch-context dataflow that strengthens seed predicates with
  // available conditions.
  telemetry::Span FlowSpan("correlate.conditionFlow", "correlate");
  // Forward must-analysis: meet = intersection, top = "unvisited".
  std::vector<std::optional<std::map<std::string, ExprPtr>>> In(
      G.numLocations());
  In[G.entry()] = std::map<std::string, ExprPtr>();

  std::deque<Location> Work;
  Work.push_back(G.entry());
  while (!Work.empty()) {
    Location L = Work.front();
    Work.pop_front();
    if (!In[L])
      continue;
    for (uint32_t EdgeIdx : G.successors(L)) {
      const CfgEdge &E = G.edge(EdgeIdx);
      std::map<std::string, ExprPtr> Out = *In[L];
      transferAtom(E.Atom, Ctx, Out);
      bool Changed = false;
      if (!In[E.To]) {
        In[E.To] = std::move(Out);
        Changed = true;
      } else {
        // Intersection.
        std::map<std::string, ExprPtr> &Dst = *In[E.To];
        for (auto It = Dst.begin(); It != Dst.end();) {
          if (Out.count(It->first)) {
            ++It;
          } else {
            It = Dst.erase(It);
            Changed = true;
          }
        }
      }
      if (Changed)
        Work.push_back(E.To);
    }
  }

  CondsAt.resize(G.numLocations());
  for (Location L = 0; L < G.numLocations(); ++L)
    if (In[L])
      for (const auto &[Key, Cond] : *In[L]) {
        (void)Key;
        CondsAt[L].push_back(Cond);
      }
}

FormulaPtr ConditionFlow::postCondition(Location L, Lowering &Low,
                                        TermId StateConst) const {
  std::vector<FormulaPtr> Conds;
  for (const ExprPtr &C : CondsAt[L]) {
    FormulaPtr F = Low.lowerExprBool(StateConst, C);
    // Conditions requiring fresh-constant definitions cannot live inside
    // relation predicates (they would be unprovable in consequent
    // position); drop them.
    if (!Low.drainPendingDefs().empty())
      continue;
    Conds.push_back(std::move(F));
  }
  return Formula::mkAnd(std::move(Conds));
}

//===----------------------------------------------------------------------===//
// Correlation relation (paper Sec. 4)
//===----------------------------------------------------------------------===//

namespace {

/// First statement-meta-variable locations reachable from \p From without
/// passing through another one — the targets of the paper's ~>S relation.
std::vector<Location> nextMetaLocations(const Cfg &G, Location From) {
  std::vector<char> IsMeta(G.numLocations(), 0);
  for (Location L : G.metaStmtLocations())
    IsMeta[L] = 1;

  std::vector<char> Visited(G.numLocations(), 0);
  std::vector<Location> Out;
  std::deque<Location> Work;

  // Successors of From (From itself being a meta location does not stop
  // the search: ~>S looks strictly forward).
  auto PushSuccs = [&](Location L) {
    for (uint32_t E : G.successors(L)) {
      Location To = G.edge(E).To;
      if (!Visited[To]) {
        Visited[To] = 1;
        Work.push_back(To);
      }
    }
  };

  PushSuccs(From);
  while (!Work.empty()) {
    Location L = Work.front();
    Work.pop_front();
    if (IsMeta[L]) {
      Out.push_back(L);
      continue; // Do not look past it.
    }
    PushSuccs(L);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// True if every cycle of \p G passes through a marked stop location.
bool loopsCut(const Cfg &G, const std::vector<char> &Stops) {
  enum Color : char { White, Grey, Black };
  std::vector<char> Colors(G.numLocations(), White);
  for (Location Root = 0; Root < G.numLocations(); ++Root) {
    if (Colors[Root] != White || Stops[Root])
      continue;
    std::vector<std::pair<Location, size_t>> Stack{{Root, 0}};
    Colors[Root] = Grey;
    while (!Stack.empty()) {
      auto &[L, NextSucc] = Stack.back();
      if (NextSucc >= G.successors(L).size()) {
        Colors[L] = Black;
        Stack.pop_back();
        continue;
      }
      Location To = G.edge(G.successors(L)[NextSucc++]).To;
      if (Stops[To])
        continue;
      if (Colors[To] == Grey)
        return false;
      if (Colors[To] == White) {
        Colors[To] = Grey;
        Stack.emplace_back(To, 0);
      }
    }
  }
  return true;
}

/// Loop-head locations (targets of back edges), in location order.
std::vector<Location> loopHeads(const Cfg &G) {
  // Reachability matrix via per-node BFS (graphs are tiny).
  std::vector<Location> Heads;
  for (const CfgEdge &E : G.edges()) {
    // E.To is a head if E.From is reachable from E.To.
    std::vector<char> Visited(G.numLocations(), 0);
    std::deque<Location> Work{E.To};
    Visited[E.To] = 1;
    bool Reaches = false;
    while (!Work.empty() && !Reaches) {
      Location L = Work.front();
      Work.pop_front();
      if (L == E.From) {
        Reaches = true;
        break;
      }
      for (uint32_t Succ : G.successors(L)) {
        Location To = G.edge(Succ).To;
        if (!Visited[To]) {
          Visited[To] = 1;
          Work.push_back(To);
        }
      }
    }
    if (Reaches &&
        std::find(Heads.begin(), Heads.end(), E.To) == Heads.end())
      Heads.push_back(E.To);
  }
  std::sort(Heads.begin(), Heads.end());
  return Heads;
}

} // namespace

CorrelationRelation pec::correlate(const Cfg &P1, const Cfg &P2,
                                   const ProofContext & /*Ctx*/, Lowering &Low,
                                   TermId S1, TermId S2,
                                   const ConditionFlow &F1,
                                   const ConditionFlow &F2) {
  telemetry::Span SeedSpan("correlate.seed", "correlate");
  TermArena &A = Low.arena();
  FormulaPtr StatesEqual = Formula::mkEq(A, S1, S2);

  auto Cond = [&](Location L1, Location L2) {
    return Formula::mkAnd({StatesEqual, F1.postCondition(L1, Low, S1),
                           F2.postCondition(L2, Low, S2)});
  };

  CorrelationRelation R;
  R.add(P1.entry(), P2.entry(), StatesEqual);
  R.add(P1.exit(), P2.exit(), StatesEqual);

  // The meta-statement each L_S location is about to execute. Locations are
  // paired only when they precede the *same* meta-variable — the paper's
  // "finds the corresponding point in the other program" (Sec. 2.2); state
  // equality is only meaningful (and only needed) at such pairs.
  auto MetaNameAt = [](const Cfg &G, Location L) {
    for (uint32_t E : G.successors(L))
      if (G.edge(E).Atom->kind() == StmtKind::MetaStmt)
        return G.edge(E).Atom->metaName();
    return Symbol();
  };

  // Fixpoint over Formula (2): pair up reachable meta-statement locations.
  std::deque<std::pair<Location, Location>> Work;
  std::set<std::pair<Location, Location>> Seen;
  Work.emplace_back(P1.entry(), P2.entry());
  Seen.insert(Work.back());

  while (!Work.empty()) {
    auto [L1, L2] = Work.front();
    Work.pop_front();
    std::vector<Location> Next1 = nextMetaLocations(P1, L1);
    std::vector<Location> Next2 = nextMetaLocations(P2, L2);
    for (Location N1 : Next1) {
      for (Location N2 : Next2) {
        // Keep exploring even through non-matching pairs so matching pairs
        // deeper in the programs are still discovered.
        if (Seen.insert(std::make_pair(N1, N2)).second)
          Work.emplace_back(N1, N2);
        if (MetaNameAt(P1, N1) != MetaNameAt(P2, N2))
          continue;
        R.add(N1, N2, Cond(N1, N2));
      }
    }
  }

  // Fallback for rotation-style transformations (e.g. the combined software
  // pipelining rule, Fig. 5): if name-matched pairing leaves some loop
  // uncut, the aligned points pair *different* meta-variables. Seed the
  // full cross product of reachable pairs; misaligned extras are harmless —
  // the checker's feasibility pruning keeps them inert.
  if (!loopsCut(P1, R.origStopMask(P1.numLocations())) ||
      !loopsCut(P2, R.transStopMask(P2.numLocations()))) {
    for (const auto &[N1, N2] : Seen) {
      if (N1 == P1.entry() && N2 == P2.entry())
        continue;
      R.add(N1, N2, Cond(N1, N2));
    }
  }

  // Concrete-program fallback (classic translation validation, Sec. 2.3):
  // with no meta-statements there is nothing to pair, so cut loops by
  // correlating loop heads positionally.
  if (!loopsCut(P1, R.origStopMask(P1.numLocations())) ||
      !loopsCut(P2, R.transStopMask(P2.numLocations()))) {
    std::vector<Location> Heads1 = loopHeads(P1);
    std::vector<Location> Heads2 = loopHeads(P2);
    if (Heads1.size() == Heads2.size())
      for (size_t I = 0; I < Heads1.size(); ++I)
        R.add(Heads1[I], Heads2[I], Cond(Heads1[I], Heads2[I]));
  }
  SeedSpan.arg("entries", static_cast<uint64_t>(R.size()));
  return R;
}
