//===- Checker.cpp - Bisimulation checking --------------------------------------===//

#include "pec/Checker.h"

#include "logic/Subst.h"
#include "logic/SymExec.h"
#include "pec/Correlate.h"
#include "solver/Clone.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <sstream>

using namespace pec;
using telemetry::Purpose;
using telemetry::PurposeScope;

/// Set PEC_DEBUG=1 in the environment to trace checker decisions.
static bool debugEnabled() {
  static bool Enabled = std::getenv("PEC_DEBUG") != nullptr;
  return Enabled;
}

namespace {

/// One executed path of one program from a relation entry.
struct ExecutedPath {
  Location End = InvalidLocation;
  FormulaPtr Guards; ///< Path-selecting branch conditions (conjunction).
  FormulaPtr Facts;  ///< Unconditionally valid fact instances.
  TermId FinalState = InvalidTerm;
};

/// One simulation constraint, Definition 2 shape: when program `Mover`
/// takes `Move` from entry `Source`, the other program must have *some*
/// response — one of `Responses` (possibly the empty stuttering response) —
/// landing on a relation entry whose predicate then holds:
///
///   phi_X && A_move  =>  OR_r (A_r && phi_target_r [s -> t])
struct Constraint {
  size_t Source = 0;
  int MoverSide = 1; ///< 1: original moves, 2: transformed moves.
  ExecutedPath Move;
  struct Response {
    size_t Target = 0;
    FormulaPtr Guards; ///< True for the stuttering response.
    FormulaPtr Facts;
    TermId FinalState = InvalidTerm;
  };
  std::vector<Response> Responses;
};

class CheckerImpl {
public:
  CheckerImpl(CorrelationRelation &R, const Cfg &P1, const Cfg &P2,
              const ProofContext &Ctx, Lowering &Low, Atp &Prover, TermId S1,
              TermId S2, const CheckerOptions &Options)
      : R(R), P1(P1), P2(P2), Ctx(Ctx), Low(Low), Prover(Prover), S1(S1),
        S2(S2), Options(Options), Flow1(P1, Ctx), Flow2(P2, Ctx) {}

  CheckerResult run() {
    CheckerResult Result;
    {
      telemetry::Span PathsSpan("checker.computePaths", "checker");
      trace::Span PathsTrace("compute_paths");
      if (!computePaths(Result))
        return Result;
      PathsSpan.arg("constraints", static_cast<uint64_t>(Constraints.size()));
      PathsSpan.arg("relation_size", static_cast<uint64_t>(R.size()));
    }
    Result.PathPairs = Constraints.size();
    telemetry::Span SolveSpan("checker.solveConstraints", "checker");
    solveConstraints(Result);
    SolveSpan.arg("strengthenings",
                  static_cast<uint64_t>(Result.Strengthenings));
    return Result;
  }

private:
  FormulaPtr conjoin(const std::vector<FormulaPtr> &Fs) {
    std::vector<FormulaPtr> All = Fs;
    return Formula::mkAnd(std::move(All));
  }

  bool computePaths(CheckerResult &Result) {
    // Stop masks are stable: lazily added entries only pair locations that
    // already occur in the relation on their respective sides.
    std::vector<char> Stops1 = R.origStopMask(P1.numLocations());
    std::vector<char> Stops2 = R.transStopMask(P2.numLocations());

    // Phase A: enumerate paths, prune, and lazily complete the relation.
    // Constraints are built in phase B only once R is stable, so responses
    // can land on pairs discovered while processing other entries.
    std::vector<std::vector<ExecutedPath>> AllExecs1, AllExecs2;
    std::vector<std::vector<ExecutedPath>> AllResps1, AllResps2;

    for (size_t EntryIdx = 0; EntryIdx < R.size(); ++EntryIdx) {
      RelEntry Entry = R.entry(EntryIdx);

      std::vector<CfgPath> Paths1, Paths2;
      if (!enumeratePaths(P1, Entry.L1, Stops1, Paths1,
                          Options.MaxPathsPerEntry, Options.MaxPathLen) ||
          !enumeratePaths(P2, Entry.L2, Stops2, Paths2,
                          Options.MaxPathsPerEntry, Options.MaxPathLen)) {
        Result.Kind = FailureKind::NoCorrelation;
        Result.FailureReason =
            "path enumeration exceeded bounds (a loop is not cut by any "
            "correlation entry)";
        if (Options.Diagnose) {
          auto D = std::make_shared<FailureDiagnosis>();
          D->Kind = Result.Kind;
          D->L1 = Entry.L1;
          D->L2 = Entry.L2;
          D->EntryPredicate = clipText(Entry.Pred->str(Low.arena()));
          Result.Diagnosis = std::move(D);
        }
        return false;
      }

      // Bisimulation is symmetric (Def. 3): if one program can still step
      // from this entry but the other is stuck (at its exit), the entry is
      // admissible only if it is unreachable.
      if (Paths1.empty() != Paths2.empty()) {
        PurposeScope Tag(Purpose::PathPruning);
        AtpResult Reach = Prover.query(
            AtpQuery::satisfiability(Entry.Pred, Options.Diagnose));
        AtpModel Witness = std::move(Reach.Model);
        bool Reachable = Reach.Verdict;
        if (Reachable) {
          std::ostringstream OS;
          OS << "at correlated locations (" << Entry.L1 << ", " << Entry.L2
             << ") one program has terminated while the other can still "
                "step";
          Result.Kind = FailureKind::TerminationMismatch;
          Result.FailureReason = OS.str();
          if (Options.Diagnose) {
            auto D = std::make_shared<FailureDiagnosis>();
            D->Kind = Result.Kind;
            D->L1 = Entry.L1;
            D->L2 = Entry.L2;
            D->EntryPredicate = clipText(Entry.Pred->str(Low.arena()));
            D->MoverSide = Paths1.empty() ? 2 : 1;
            D->Model = std::move(Witness);
            Result.Diagnosis = std::move(D);
          }
          return false;
        }
        AllExecs1.emplace_back();
        AllExecs2.emplace_back();
        AllResps1.emplace_back();
        AllResps2.emplace_back();
        continue;
      }

      auto ExecuteAll = [&](const Cfg &G, Location From,
                            const std::vector<CfgPath> &Paths, TermId State,
                            const LocationFacts *Facts) {
        std::vector<ExecutedPath> Out;
        Out.reserve(Paths.size());
        for (const CfgPath &Path : Paths) {
          PathExec E = executePath(Low, G, From, Path, State, Facts);
          Out.push_back(ExecutedPath{G.edge(Path.back()).To,
                                     conjoin(E.Guards), conjoin(E.Facts),
                                     E.FinalState});
        }
        return Out;
      };

      std::vector<ExecutedPath> Execs1 =
          ExecuteAll(P1, Entry.L1, Paths1, S1, &Ctx.OrigFacts);
      std::vector<ExecutedPath> Execs2 =
          ExecuteAll(P2, Entry.L2, Paths2, S2, &Ctx.TransFacts);

      // Response paths may cross intermediate relation points ("catch-up"
      // stuttering responses). With slack 0 they coincide with the moves.
      std::vector<ExecutedPath> Resps1 = Execs1, Resps2 = Execs2;
      if (Options.ResponseSlack > 0) {
        std::vector<CfgPath> Relaxed1, Relaxed2;
        if (enumeratePaths(P1, Entry.L1, Stops1, Relaxed1,
                           Options.MaxPathsPerEntry, Options.MaxPathLen,
                           Options.ResponseSlack))
          Resps1 = ExecuteAll(P1, Entry.L1, Relaxed1, S1, &Ctx.OrigFacts);
        if (enumeratePaths(P2, Entry.L2, Stops2, Relaxed2,
                           Options.MaxPathsPerEntry, Options.MaxPathLen,
                           Options.ResponseSlack))
          Resps2 = ExecuteAll(P2, Entry.L2, Relaxed2, S2, &Ctx.TransFacts);
      }

      // Lazy relation completion: any jointly feasible endpoint pair must
      // be correlated; add missing pairs with their Cond predicate. (New
      // entries are processed by the outer loop since R grew.)
      for (const ExecutedPath &E1 : Execs1) {
        for (const ExecutedPath &E2 : Execs2) {
          if (R.find(E1.End, E2.End) >= 0)
            continue;
          if (Options.BannedPairs.count({E1.End, E2.End}))
            continue;
          FormulaPtr Joint =
              Formula::mkAnd({Entry.Pred, E1.Guards, E1.Facts, E2.Guards,
                              E2.Facts});
          bool Feasible;
          {
            PurposeScope Tag(Purpose::PathPruning);
            Feasible = Prover.query(AtpQuery::satisfiability(Joint)).Verdict;
          }
          if (!Feasible) {
            ++Result.PrunedPathPairs;
            telemetry::counterAdd("checker/pruned_path_pairs");
            continue;
          }
          if (debugEnabled())
            std::fprintf(stderr,
                         "[pec] lazily adding pair (%u, %u) from (%u, %u)\n",
                         E1.End, E2.End, Entry.L1, Entry.L2);
          FormulaPtr Pred =
              Formula::mkAnd({Formula::mkEq(Low.arena(), S1, S2),
                              Flow1.postCondition(E1.End, Low, S1),
                              Flow2.postCondition(E2.End, Low, S2)});
          R.add(E1.End, E2.End, std::move(Pred));
        }
      }

      AllExecs1.push_back(std::move(Execs1));
      AllExecs2.push_back(std::move(Execs2));
      AllResps1.push_back(std::move(Resps1));
      AllResps2.push_back(std::move(Resps2));
    }

    // Phase B: Definition 2 constraints for both directions.
    telemetry::Span ConstraintsSpan("checker.generateConstraints", "checker");
    for (size_t EntryIdx = 0; EntryIdx < AllExecs1.size(); ++EntryIdx) {
      const RelEntry &Entry = R.entry(EntryIdx);
      buildConstraints(EntryIdx, Entry, AllExecs1[EntryIdx],
                       AllResps2[EntryIdx], /*MoverSide=*/1);
      buildConstraints(EntryIdx, Entry, AllExecs2[EntryIdx],
                       AllResps1[EntryIdx], /*MoverSide=*/2);
    }
    return true;
  }

  void buildConstraints(size_t EntryIdx, const RelEntry &Entry,
                        const std::vector<ExecutedPath> &Moves,
                        const std::vector<ExecutedPath> &Others,
                        int MoverSide) {
    Location OtherLoc = MoverSide == 1 ? Entry.L2 : Entry.L1;
    for (const ExecutedPath &Move : Moves) {
      Constraint C;
      C.Source = EntryIdx;
      C.MoverSide = MoverSide;
      C.Move = Move;
      for (const ExecutedPath &Resp : Others) {
        int32_t Target = MoverSide == 1 ? R.find(Move.End, Resp.End)
                                        : R.find(Resp.End, Move.End);
        if (Target < 0)
          continue; // Jointly infeasible (pruned above).
        C.Responses.push_back(Constraint::Response{
            static_cast<size_t>(Target), Resp.Guards, Resp.Facts,
            Resp.FinalState});
      }
      // Stuttering response: the other program stays put.
      {
        int32_t Target = MoverSide == 1 ? R.find(Move.End, OtherLoc)
                                        : R.find(OtherLoc, Move.End);
        if (Target >= 0)
          C.Responses.push_back(Constraint::Response{
              static_cast<size_t>(Target), Formula::mkTrue(),
              Formula::mkTrue(), MoverSide == 1 ? S2 : S1});
      }
      Constraints.push_back(std::move(C));
    }
  }

  /// The proof obligation of \p C given current entry predicates:
  ///
  ///   move.guards && move.facts && AND_r resp_r.facts
  ///     =>  OR_r  (resp_r.guards && phi_target_r [s -> t])
  ///
  /// All fact instances are unconditionally valid (flow facts come
  /// pre-wrapped with their guard prefix by the symbolic executor), so they
  /// are sound antecedents even for responses. Response guards sit in
  /// positive position — they select the response the deterministic program
  /// actually takes.
  /// The obligation split at the granularity the incremental core query
  /// wants: the antecedent conjunction and one disjunct per response
  /// (aligned with C.Responses).
  struct ObligationParts {
    FormulaPtr Antecedent;
    std::vector<FormulaPtr> Disjuncts;
  };

  ObligationParts obligationParts(const Constraint &C) {
    std::vector<FormulaPtr> Antecedents = {C.Move.Guards, C.Move.Facts};
    std::vector<FormulaPtr> Disjuncts;
    for (const Constraint::Response &Resp : C.Responses) {
      TermSubst Subst;
      if (C.MoverSide == 1) {
        Subst[S1] = C.Move.FinalState;
        Subst[S2] = Resp.FinalState;
      } else {
        Subst[S1] = Resp.FinalState;
        Subst[S2] = C.Move.FinalState;
      }
      FormulaPtr Shifted =
          substituteFormula(Low.arena(), R.entry(Resp.Target).Pred, Subst);
      Antecedents.push_back(Resp.Facts);
      Disjuncts.push_back(Formula::mkAnd(Resp.Guards, Shifted));
    }
    return ObligationParts{Formula::mkAnd(std::move(Antecedents)),
                           std::move(Disjuncts)};
  }

  FormulaPtr obligation(const Constraint &C) {
    ObligationParts P = obligationParts(C);
    return Formula::mkImplies(P.Antecedent,
                              Formula::mkOr(std::move(P.Disjuncts)));
  }

  /// Captures a structured diagnosis of the failing constraint \p C whose
  /// checked implication \p Check came back invalid: counterexample model
  /// (fresh ATP query with model extraction), assumed facts, the recorded
  /// strengthening trail, and the greedily minimized obligation. The extra
  /// queries are tagged Purpose::Minimize so reports account them.
  void diagnoseConstraint(CheckerResult &Result, const Constraint &C,
                          const FormulaPtr &Check, FailureKind Kind) {
    Result.Kind = Kind;
    if (!Options.Diagnose)
      return;
    telemetry::Span Span("checker.diagnose", "checker");
    auto D = std::make_shared<FailureDiagnosis>();
    D->Kind = Kind;
    const RelEntry &E = R.entry(C.Source);
    D->L1 = E.L1;
    D->L2 = E.L2;
    D->MoverSide = C.MoverSide;
    D->EntryPredicate = clipText(E.Pred->str(Low.arena()));
    D->Obligation = clipText(Check->str(Low.arena()));
    D->StrengtheningTrail = Trail;

    // Side-condition fact instances assumed by the failing constraint.
    std::vector<FormulaPtr> Facts;
    flattenConjuncts(C.Move.Facts, Facts);
    for (const Constraint::Response &Resp : C.Responses)
      flattenConjuncts(Resp.Facts, Facts);
    for (const FormulaPtr &F : Facts) {
      std::string S = clipText(F->str(Low.arena()), 400);
      if (std::find(D->AssumedFacts.begin(), D->AssumedFacts.end(), S) ==
          D->AssumedFacts.end())
        D->AssumedFacts.push_back(S);
      if (D->AssumedFacts.size() >= 16)
        break;
    }

    // Concrete two-state counterexample: re-run the failed query with
    // model extraction (empty when the invalidity was a budget answer).
    {
      PurposeScope Tag(Purpose::Minimize);
      D->Model = Prover.query(AtpQuery::validity(Check, /*WantModel=*/true))
                     .Model;
    }

    MinimizeResult M =
        minimizeObligation(Prover, Check, Options.MaxMinimizerQueries);
    D->ObligationConjuncts = M.OriginalConjuncts;
    D->MinimizedConjuncts = M.KeptConjuncts;
    D->MinimizerQueries = M.Queries;
    D->MinimizedObligation = clipText(M.Minimized->str(Low.arena()));
    Span.arg("minimizer_queries", static_cast<uint64_t>(M.Queries));
    Result.Diagnosis = std::move(D);
  }

  /// Parallel wave prefilter (docs/PARALLELISM.md): checks every queued
  /// constraint against the *current* predicates concurrently and retires
  /// the ones that hold; failures stay queued for the sequential
  /// strengthen/diagnose path below. Retiring a holding constraint is
  /// exactly what the sequential pop would have done with it, and
  /// predicate strengthening is monotone, so this chaotic-iteration order
  /// converges to the same fixpoint — and because wave membership and
  /// answers do not depend on thread count or completion order, the
  /// decisions (and merged stats) are identical for any jobs >= 2.
  void waveFilter(std::deque<size_t> &Worklist, std::vector<char> &InWorklist,
                  const std::vector<char> &Requeued) {
    std::vector<size_t> Wave(Worklist.begin(), Worklist.end());
    metrics::record(metrics::Hist::WaveWidth, Wave.size());
    // One causal span per wave: the per-obligation tasks spawned below
    // adopt it as parent across the pool, so the journal records
    // rule -> check -> wave -> obligation -> query.
    trace::Span WaveTrace("wave");
    WaveTrace.attr("wave", static_cast<uint64_t>(WaveIndex++));
    WaveTrace.attr("width", static_cast<uint64_t>(Wave.size()));
    Worklist.clear();
    // Obligations are built up front on this thread: the rule's shared
    // TermArena is single-thread confined.
    std::vector<FormulaPtr> Checks(Wave.size());
    {
      telemetry::Span PwpSpan("checker.pwp", "checker");
      PwpSpan.arg("constraints", static_cast<uint64_t>(Wave.size()));
      for (size_t I = 0; I < Wave.size(); ++I)
        Checks[I] =
            Formula::mkImplies(R.entry(Constraints[Wave[I]].Source).Pred,
                               obligation(Constraints[Wave[I]]));
    }
    std::vector<char> Holds(Wave.size(), 0);
    std::vector<AtpStats> WaveStats(Wave.size());
    {
      telemetry::Span WaveSpan("checker.wave", "checker");
      WaveSpan.arg("constraints", static_cast<uint64_t>(Wave.size()));
      TaskGroup Group(*Options.Pool);
      for (size_t I = 0; I < Wave.size(); ++I) {
        Group.spawn([this, &Checks, &Holds, &WaveStats, &Wave, &Requeued, I] {
          bool IsRecheck = Requeued[Wave[I]] != 0;
          trace::Span ObTrace("obligation");
          ObTrace.attr("obligation", static_cast<uint64_t>(Wave[I]));
          ObTrace.attr("kind", IsRecheck ? "strengthen-recheck" : "initial");
          // Private arena + prover per obligation; only the internally
          // synchronized AtpCache is shared with other threads.
          TermArena WorkerArena;
          Atp Worker(WorkerArena, Prover.options());
          Worker.setCache(Prover.cache());
          CloneMap Memo;
          FormulaPtr Check =
              cloneFormula(Low.arena(), WorkerArena, Checks[I], Memo);
          PurposeScope Tag(IsRecheck ? Purpose::Strengthening
                                     : Purpose::Obligation);
          Holds[I] = Worker.query(AtpQuery::validity(Check)).Verdict ? 1 : 0;
          ObTrace.attr("verdict", Holds[I] ? "holds" : "invalid");
          WaveStats[I] = Worker.stats();
        });
      }
      Group.wait();
    }
    // Merge worker stats in submission order — not completion order — so
    // the rule's totals are scheduling-independent.
    for (const AtpStats &S : WaveStats)
      Prover.mergeStats(S);
    for (size_t I = 0; I < Wave.size(); ++I) {
      if (Holds[I]) {
        InWorklist[Wave[I]] = 0;
        // Retired without a core: a later strengthening of any response
        // target must conservatively re-enqueue it.
        CoreKnown[Wave[I]] = 0;
      } else {
        Worklist.push_back(Wave[I]);
      }
    }
  }

  void solveConstraints(CheckerResult &Result) {
    std::deque<size_t> Worklist;
    std::vector<char> InWorklist(Constraints.size(), 0);
    // Constraints re-enqueued after a predicate was strengthened: their
    // re-checks are attributed to the "strengthening" query purpose, the
    // initial pass to "obligation".
    std::vector<char> Requeued(Constraints.size(), 0);
    // Response targets named by the last successful incremental check's
    // assumption core (valid only while CoreKnown; wave retirements have
    // no core and reset to conservative).
    CoreKnown.assign(Constraints.size(), 0);
    CoreTargets.assign(Constraints.size(), {});
    for (size_t I = 0; I < Constraints.size(); ++I) {
      Worklist.push_back(I);
      InWorklist[I] = 1;
    }

    while (!Worklist.empty()) {
      // Obligation fan-out: drain the holding constraints in parallel,
      // then fall through to process one failure sequentially (its
      // incremental re-check below is cheap: the wave already cached the
      // answer, and the session reuses its encoding). The next wave
      // re-checks the remaining failures against the strengthened
      // predicates.
      if (Options.Pool && Worklist.size() > 1) {
        waveFilter(Worklist, InWorklist, Requeued);
        if (Worklist.empty())
          break;
      }
      size_t CI = Worklist.front();
      Worklist.pop_front();
      InWorklist[CI] = 0;
      const Constraint &C = Constraints[CI];
      if (C.Responses.empty() && debugEnabled())
        std::fprintf(stderr, "[pec] entry (%u,%u): move with no responses\n",
                     R.entry(C.Source).L1, R.entry(C.Source).L2);

      ObligationParts Parts;
      FormulaPtr Obligation;
      {
        telemetry::Span PwpSpan("checker.pwp", "checker");
        Parts = obligationParts(C);
        Obligation = Formula::mkImplies(
            Parts.Antecedent, Formula::mkOr(std::vector<FormulaPtr>(
                                  Parts.Disjuncts)));
      }
      FormulaPtr Check =
          Formula::mkImplies(R.entry(C.Source).Pred, Obligation);
      bool Holds;
      {
        trace::Span SeqTrace("obligation");
        SeqTrace.attr("obligation", static_cast<uint64_t>(CI));
        SeqTrace.attr("kind",
                      Requeued[CI] ? "strengthen-recheck" : "initial");
        PurposeScope Tag(Requeued[CI] ? Purpose::Strengthening
                                      : Purpose::Obligation);
        // Incremental check of `Pred => Obligation` on the prover's
        // persistent session: the predicate's encoding, theory lemmas,
        // and learned clauses carry over from iteration to iteration of
        // the strengthening loop, which is what makes re-checks cheap.
        // Strengthened predicates need no retraction — the old Pred's
        // root literal is simply never assumed again. The query assumes
        // each negated response disjunct separately so the assumption-
        // level unsat core names exactly the responses the proof used;
        // `Check` is still materialized for diagnosis and tracing below.
        AtpQuery Q = AtpQuery::assumptions(
            Formula::mkAnd(R.entry(C.Source).Pred, Parts.Antecedent), {},
            /*WantCore=*/true);
        Q.Assumptions.reserve(Parts.Disjuncts.size());
        for (const FormulaPtr &D : Parts.Disjuncts)
          Q.Assumptions.push_back(Formula::mkNot(D));
        AtpResult Res = Prover.query(Q);
        Holds = !Res.Verdict;
        if (Holds) {
          // Record which response *targets* the final conflict blamed:
          // the proved implication is `Pred && Ante => OR of the core
          // disjuncts`, so strengthening an entry outside this set
          // cannot invalidate it.
          CoreKnown[CI] = 1;
          CoreTargets[CI].clear();
          for (size_t Idx : Res.Core)
            if (Idx >= 1)
              CoreTargets[CI].push_back(C.Responses[Idx - 1].Target);
        } else {
          // The old proof (and its core) is invalidated. The constraint is
          // about to be retired by strengthening its source, which makes
          // its validity depend on *all* of its response targets again —
          // a stale core here would unsoundly skip the re-check when a
          // target outside it is strengthened later.
          CoreKnown[CI] = 0;
          CoreTargets[CI].clear();
        }
        SeqTrace.attr("verdict", Holds ? "holds" : "invalid");
      }
      if (Holds)
        continue;
      if (telemetry::enabled()) {
        std::ostringstream OS;
        OS << "entry (" << R.entry(C.Source).L1 << ","
           << R.entry(C.Source).L2 << ") side " << C.MoverSide << ": "
           << Check->str(Low.arena());
        telemetry::instant("checker.obligation.invalid", "checker", OS.str());
      }
      if (debugEnabled())
        std::fprintf(stderr,
                     "[pec] constraint at (%u,%u) side %d INVALID:\n  %s\n",
                     R.entry(C.Source).L1, R.entry(C.Source).L2, C.MoverSide,
                     Check->str(Low.arena()).c_str());

      // Strengthen the source predicate (paper Fig. 9 line 33), unless the
      // source is the entry pair (line 32).
      if (C.Source == 0) {
        diagnoseConstraint(Result, C, Check, FailureKind::ObligationInvalid);
        Result.FailureReason =
            "cannot strengthen the entry predicate: the programs disagree "
            "on some input";
        // Dump the failed obligation so NOT PROVED runs are debuggable
        // from the trace rather than opaque.
        if (telemetry::enabled())
          telemetry::instant("checker.proofFailed", "checker",
                             "entry predicate obligation: " +
                                 Check->str(Low.arena()));
        // Report the removable targets: a seeded pair may simply be wrong
        // (the driver retries with it banned).
        for (const Constraint::Response &Resp : C.Responses) {
          const RelEntry &Target = R.entry(Resp.Target);
          bool IsEntry = Target.L1 == P1.entry() && Target.L2 == P2.entry();
          bool IsExit = Target.L1 == P1.exit() && Target.L2 == P2.exit();
          if (!IsEntry && !IsExit)
            Result.FailedTargets.emplace_back(Target.L1, Target.L2);
        }
        return;
      }
      if (++Result.Strengthenings > Options.MaxStrengthenings) {
        diagnoseConstraint(Result, C, Check,
                           FailureKind::StrengtheningDiverged);
        Result.FailureReason = "strengthening did not converge";
        if (telemetry::enabled())
          telemetry::instant("checker.proofFailed", "checker",
                             "strengthening did not converge; last failed "
                             "obligation: " +
                                 Check->str(Low.arena()));
        return;
      }
      if (Options.Diagnose && Trail.size() < Options.MaxTrailEntries) {
        std::ostringstream OS;
        OS << "iteration " << Result.Strengthenings << ": entry ("
           << R.entry(C.Source).L1 << "," << R.entry(C.Source).L2
           << ") side " << C.MoverSide
           << " strengthened with " << clipText(Obligation->str(Low.arena()), 300);
        Trail.push_back(OS.str());
        if (Trail.size() == Options.MaxTrailEntries)
          Trail.push_back("... (further iterations not recorded)");
      }
      R.entry(C.Source).Pred =
          Formula::mkAnd(R.entry(C.Source).Pred, Obligation);
      telemetry::counterAdd("checker/strengthenings");
      trace::instant("strengthen", "entry",
                     std::to_string(R.entry(C.Source).L1) + "," +
                         std::to_string(R.entry(C.Source).L2));
      if (telemetry::enabled()) {
        std::ostringstream OS;
        OS << "iteration " << Result.Strengthenings << ": entry ("
           << R.entry(C.Source).L1 << "," << R.entry(C.Source).L2
           << ") relation_size " << R.size();
        telemetry::instant("checker.strengthen", "checker", OS.str());
      }
      // Re-check every constraint that mentions the strengthened entry as
      // a response target — except those whose last proof's unsat core
      // shows the entry's disjunct was never used: their implication only
      // mentioned other (unchanged) targets and a source predicate that
      // just got stronger, so it still holds.
      Requeued[CI] = 1;
      for (size_t I = 0; I < Constraints.size(); ++I) {
        if (InWorklist[I])
          continue;
        bool Mentions = false;
        for (const Constraint::Response &Resp : Constraints[I].Responses) {
          if (Resp.Target == C.Source) {
            Mentions = true;
            break;
          }
        }
        if (!Mentions)
          continue;
        if (CoreKnown[I] &&
            std::find(CoreTargets[I].begin(), CoreTargets[I].end(),
                      C.Source) == CoreTargets[I].end()) {
          ++Result.CoreSkippedRechecks;
          telemetry::counterAdd("checker/core_skipped_rechecks");
          trace::instant("core_skip", "obligation", std::to_string(I));
          continue;
        }
        Worklist.push_back(I);
        InWorklist[I] = 1;
        Requeued[I] = 1;
      }
    }
    Result.Proved = true;
  }

  CorrelationRelation &R;
  const Cfg &P1;
  const Cfg &P2;
  const ProofContext &Ctx;
  Lowering &Low;
  Atp &Prover;
  TermId S1, S2;
  CheckerOptions Options;
  ConditionFlow Flow1, Flow2;
  std::vector<Constraint> Constraints;
  /// Running wave number for journal attribution (waveFilter).
  size_t WaveIndex = 0;
  /// Per constraint: is the recorded core current, and which entry indices
  /// its last incremental proof blamed (see solveConstraints).
  std::vector<char> CoreKnown;
  std::vector<std::vector<size_t>> CoreTargets;
  /// Strengthening-trail lines accumulated for a potential diagnosis.
  std::vector<std::string> Trail;
};

} // namespace

CheckerResult pec::checkRelation(CorrelationRelation &R, const Cfg &P1,
                                 const Cfg &P2, const ProofContext &Ctx,
                                 Lowering &Low, Atp &Prover, TermId S1,
                                 TermId S2, const CheckerOptions &Options) {
  CheckerImpl Impl(R, P1, P2, Ctx, Low, Prover, S1, S2, Options);
  return Impl.run();
}
