//===- Pec.cpp - PEC pipeline driver ----------------------------------------------===//

#include "pec/Pec.h"

#include "lang/AstOps.h"
#include "pec/Correlate.h"
#include "pec/Explain.h"
#include "pec/Facts.h"
#include "pec/Permute.h"
#include "support/FlightRecorder.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <chrono>

using namespace pec;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

PecResult pec::proveRule(const Rule &R, const PecOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  PecResult Result;

  telemetry::Span RuleSpan("pec.proveRule");
  RuleSpan.arg("rule", R.Name);
  // Causal root of everything this rule causes (waves, obligations, ATP
  // queries — across pool threads). Created before the log scope so the
  // rule lifecycle log events carry this span's ids.
  trace::Span RuleTrace("rule");
  RuleTrace.attr("rule", R.Name);
  flight::Span FlightSpan("pec.proveRule");
  log::Scope RuleScope("rule", R.Name);
  log::debug("rule.start");

  TermArena Arena;
  Atp Prover(Arena, Options.Atp);
  Prover.setCache(Options.Cache);

  // On every exit path: snapshot prover stats and total wall-clock.
  auto Finish = [&]() {
    RuleTrace.attr("proved", Result.Proved ? "yes" : "no");
    Result.Atp = Prover.stats();
    Result.AtpQueries = Result.Atp.Queries;
    Result.Seconds = secondsSince(Start);
    metrics::record(metrics::Hist::RuleProveUs,
                    static_cast<uint64_t>(Result.Seconds * 1e6));
    if (!Result.Proved && !Result.FailureReason.empty())
      telemetry::instant("pec.notProved", "pec",
                         R.Name + ": " + Result.FailureReason);
    if (Result.Proved)
      log::debug("rule.proved")
          .num("queries", Result.AtpQueries)
          .real("seconds", Result.Seconds);
    else
      log::info("rule.not_proved")
          .str("reason", Result.FailureReason)
          .num("queries", Result.AtpQueries)
          .real("seconds", Result.Seconds);
  };

  StmtPtr Before = normalizeStmt(R.Before);
  StmtPtr After = normalizeStmt(R.After);
  std::map<Symbol, MetaStmtInfo> ExtraStmtInfo;

  // --- Permute pre-pass (paper Sec. 6) -----------------------------------
  if (Options.UsePermute) {
    auto PermuteStart = std::chrono::steady_clock::now();
    telemetry::Span PermuteSpan("pec.permute");
    trace::Span PermuteTrace("permute");
    PermuteOutcome P = runPermute(R, Prover);
    Result.PermuteSeconds = secondsSince(PermuteStart);
    if (P.Attempted) {
      PermuteSpan.arg("proved", P.Proved ? "yes" : "no");
      PermuteSpan.arg("note", P.Note);
      if (!P.Proved) {
        Result.Kind = FailureKind::PermuteConditionFailed;
        Result.FailureReason = "permute: " + P.Note;
        if (Options.Diagnose) {
          auto D = std::make_shared<FailureDiagnosis>();
          D->Kind = Result.Kind;
          // The pipeline stopped before any correlation existed: draw the
          // raw CFGs so the user still sees the two programs.
          D->Dot = renderProofDot(Cfg::build(Before), Cfg::build(After),
                                  CorrelationRelation(), Arena, R.Name,
                                  D.get());
          Result.Diagnosis = std::move(D);
        }
        Finish();
        return Result;
      }
      Result.UsedPermute = true;
      Before = P.NewBefore;
      After = P.NewAfter;
      ExtraStmtInfo = std::move(P.ExtraStmtInfo);
      Result.RequiredDeadVars = std::move(P.RequiredDeadVars);
    }
  }

  // --- Correlate (paper Sec. 4) ------------------------------------------
  auto CorrelateStart = std::chrono::steady_clock::now();
  Cfg P1 = Cfg::build(Before);
  Cfg P2 = Cfg::build(After);

  Expected<ProofContext> Ctx =
      buildProofContext(R, P1, P2, Options.UserFacts);
  if (!Ctx) {
    Result.Kind = FailureKind::SideCondition;
    Result.FailureReason = "side condition: " + Ctx.error().str();
    if (Options.Diagnose) {
      auto D = std::make_shared<FailureDiagnosis>();
      D->Kind = Result.Kind;
      D->Dot = renderProofDot(P1, P2, CorrelationRelation(), Arena, R.Name,
                              D.get());
      Result.Diagnosis = std::move(D);
    }
    Result.CorrelateSeconds = secondsSince(CorrelateStart);
    Finish();
    return Result;
  }
  for (auto &[Name, Info] : ExtraStmtInfo) {
    MetaStmtInfo &Slot = Ctx->Env.StmtInfo[Name];
    Slot.MaskedVars.insert(Info.MaskedVars.begin(), Info.MaskedVars.end());
    Slot.PreservedVars.insert(Info.PreservedVars.begin(),
                              Info.PreservedVars.end());
  }

  Lowering Low(Arena, Ctx->Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("s2"), Sort::State);

  CorrelationRelation SeedRel;
  {
    telemetry::Span CorrelateSpan("pec.correlate");
    trace::Span CorrelateTrace("correlate");
    ConditionFlow Flow1(P1, *Ctx), Flow2(P2, *Ctx);
    SeedRel = correlate(P1, P2, *Ctx, Low, S1, S2, Flow1, Flow2);
    CorrelateSpan.arg("seed_entries", static_cast<uint64_t>(SeedRel.size()));
  }
  Result.CorrelateSeconds = secondsSince(CorrelateStart);

  // --- Check (paper Sec. 5) ----------------------------------------------
  // Check, retrying with wrong seed pairs banned: a seeded correlation pair
  // may be semantically wrong (the aligned states legitimately differ, as
  // in code sinking), while the proof succeeds without it. Removing a pair
  // only weakens the relation, so retrying is sound; the loop is bounded
  // by the seed count.
  auto CheckStart = std::chrono::steady_clock::now();
  CheckerOptions CheckOpts = Options.Checker;
  CheckOpts.Diagnose = Options.Diagnose;
  CheckOpts.Pool = Options.Pool;
  CheckerResult Check;
  // Declared outside the loop so the final (failing) relation is available
  // to the diagnosis DOT rendering below.
  CorrelationRelation Rel;
  for (size_t Attempt = 0; Attempt <= SeedRel.size(); ++Attempt) {
    telemetry::Span CheckSpan("pec.check");
    CheckSpan.arg("attempt", static_cast<uint64_t>(Attempt));
    trace::Span CheckTrace("check");
    CheckTrace.attr("attempt", static_cast<uint64_t>(Attempt));
    Rel = CorrelationRelation();
    for (const RelEntry &Entry : SeedRel.entries())
      if (!CheckOpts.BannedPairs.count({Entry.L1, Entry.L2}))
        Rel.add(Entry.L1, Entry.L2, Entry.Pred);
    Result.RelationSize = Rel.size();

    Check = checkRelation(Rel, P1, P2, *Ctx, Low, Prover, S1, S2, CheckOpts);
    CheckSpan.arg("proved", Check.Proved ? "yes" : "no");
    if (Check.Proved || Check.FailedTargets.empty())
      break;
    bool NewBans = false;
    for (const auto &Pair : Check.FailedTargets)
      NewBans |= CheckOpts.BannedPairs.insert(Pair).second;
    if (!NewBans)
      break;
  }
  Result.CheckSeconds = secondsSince(CheckStart);
  Result.Proved = Check.Proved;
  Result.Kind = Check.Kind;
  Result.FailureReason = Check.FailureReason;
  Result.Strengthenings = Check.Strengthenings;
  Result.PathPairs = Check.PathPairs;
  Result.PrunedPathPairs = Check.PrunedPathPairs;
  if (!Check.Proved) {
    Result.Diagnosis = Check.Diagnosis;
    if (Result.Diagnosis)
      Result.Diagnosis->Dot = renderProofDot(P1, P2, Rel, Arena, R.Name,
                                             Result.Diagnosis.get());
  }
  Finish();
  return Result;
}

PecResult pec::proveEquivalence(const StmtPtr &Original,
                                const StmtPtr &Transformed,
                                const PecOptions &Options) {
  Rule R;
  R.Name = "translation-validation";
  R.Before = Original;
  R.After = Transformed;
  R.Cond = SideCond::mkTrue();
  return proveRule(R, Options);
}
