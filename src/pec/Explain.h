//===- Explain.h - Proof-failure diagnostics --------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured explanations for failed equivalence proofs. When the pipeline
/// rejects a rule it records a FailureDiagnosis: which correlation entry
/// failed, the proof obligation that did not hold, a concrete two-state
/// counterexample model extracted from the ATP, the side-condition facts
/// that were assumed, and a greedily minimized form of the failing
/// obligation (drop-one-conjunct over the hypotheses, re-querying the ATP).
///
/// The diagnosis is rendered three ways: human-readable text for the
/// `pec explain` subcommand, a Graphviz DOT drawing of both CFGs with the
/// correlation entries as cross-edges, and a `diagnosis` object in the
/// pec-report-v2 JSON schema (see Report.h / docs/DIAGNOSTICS.md).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_EXPLAIN_H
#define PEC_PEC_EXPLAIN_H

#include "cfg/Cfg.h"
#include "pec/Relation.h"
#include "solver/Atp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pec {

/// Why a proof failed, as a closed taxonomy (the `failure_reason` slug of
/// pec-report-v2; free text lives in `failure_detail`).
enum class FailureKind {
  None,                   ///< Proved, or not yet diagnosed.
  NoCorrelation,          ///< Path enumeration blew up: a loop is not cut
                          ///< by any correlation entry.
  TerminationMismatch,    ///< One program terminated, the other can step.
  ObligationInvalid,      ///< The entry pair's obligation is invalid: the
                          ///< programs disagree on some input.
  StrengtheningDiverged,  ///< The strengthening fixpoint did not converge.
  PermuteConditionFailed, ///< The Permute module's condition was invalid.
  SideCondition,          ///< The rule's side condition did not elaborate.
};

/// The stable report slug for \p K ("obligation-invalid", ...). Empty for
/// FailureKind::None.
const char *failureKindName(FailureKind K);

/// Parses a report slug back into a FailureKind (None for unknown/empty).
FailureKind failureKindFromName(const std::string &Name);

/// Everything recorded about one proof failure. All formulas are rendered
/// to strings (and clipped) at capture time so the diagnosis outlives the
/// term arena of the proof.
struct FailureDiagnosis {
  FailureKind Kind = FailureKind::None;
  /// The failing correlation entry (l1, l2, phi); InvalidLocation when the
  /// failure happened before any entry was singled out.
  Location L1 = InvalidLocation;
  Location L2 = InvalidLocation;
  std::string EntryPredicate; ///< Rendered phi of the failing entry.
  /// Which program moved in the failing simulation constraint:
  /// 1 = original, 2 = transformed, 0 = not applicable.
  int MoverSide = 0;
  std::string Obligation;          ///< Rendered failing check formula.
  std::string MinimizedObligation; ///< After greedy hypothesis dropping.
  size_t ObligationConjuncts = 0;  ///< Hypothesis conjuncts before.
  size_t MinimizedConjuncts = 0;   ///< Hypothesis conjuncts kept.
  uint32_t MinimizerQueries = 0;   ///< ATP re-queries the minimizer spent.
  /// One line per strengthening iteration (capped): which entry was
  /// strengthened and with what obligation.
  std::vector<std::string> StrengtheningTrail;
  /// Side-condition fact instances that were assumed in the failing
  /// constraint (rendered, deduplicated).
  std::vector<std::string> AssumedFacts;
  /// Concrete two-state counterexample from the ATP (empty when the
  /// failure did not come from a falsifiable query, e.g. path blow-up).
  AtpModel Model;
  /// Graphviz drawing of both CFGs with correlation cross-edges; filled by
  /// the pipeline driver once the final relation is known.
  std::string Dot;
};

class Atp;

/// Outcome of the greedy obligation minimizer.
struct MinimizeResult {
  FormulaPtr Minimized;        ///< Implication over the kept hypotheses.
  size_t OriginalConjuncts = 0;
  size_t KeptConjuncts = 0;
  uint32_t Queries = 0;
};

/// Greedy drop-one-conjunct minimization of the invalid implication
/// \p Check: repeatedly drop a hypothesis conjunct, keep the drop iff the
/// ATP still reports the implication invalid. Queries are tagged with
/// telemetry Purpose::Minimize and capped at \p MaxQueries. Hypotheses
/// that survive are load-bearing for the (in)validity answer; when none
/// survive, the conclusion is falsifiable outright.
MinimizeResult minimizeObligation(Atp &Prover, const FormulaPtr &Check,
                                  uint32_t MaxQueries);

/// Splits formula \p F into its conjunct leaves (recursively through And).
void flattenConjuncts(const FormulaPtr &F, std::vector<FormulaPtr> &Out);

/// Clips \p S to \p MaxLen characters, appending an ellipsis marker.
std::string clipText(std::string S, size_t MaxLen = 2000);

/// Renders both CFGs as one Graphviz digraph: a cluster per program,
/// statement-labeled edges, and the correlation entries of \p R as dashed
/// cross-edges labeled with their predicates. When \p D is non-null its
/// failing entry is highlighted. Output passes `dot -Tsvg`.
std::string renderProofDot(const Cfg &P1, const Cfg &P2,
                           const CorrelationRelation &R,
                           const TermArena &Arena,
                           const std::string &RuleName,
                           const FailureDiagnosis *D = nullptr);

/// Human-readable rendering of a diagnosis (the `pec explain` output).
std::string renderDiagnosis(const FailureDiagnosis &D,
                            const std::string &RuleName);

} // namespace pec

#endif // PEC_PEC_EXPLAIN_H
