//===- Explain.cpp - Proof-failure diagnostics ----------------------------------===//

#include "pec/Explain.h"

#include "lang/Printer.h"
#include "support/Escape.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <sstream>

using namespace pec;

const char *pec::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "";
  case FailureKind::NoCorrelation:
    return "no-correlation";
  case FailureKind::TerminationMismatch:
    return "termination-mismatch";
  case FailureKind::ObligationInvalid:
    return "obligation-invalid";
  case FailureKind::StrengtheningDiverged:
    return "strengthening-diverged";
  case FailureKind::PermuteConditionFailed:
    return "permute-condition-failed";
  case FailureKind::SideCondition:
    return "side-condition";
  }
  return "";
}

FailureKind pec::failureKindFromName(const std::string &Name) {
  static const FailureKind Kinds[] = {
      FailureKind::NoCorrelation,         FailureKind::TerminationMismatch,
      FailureKind::ObligationInvalid,     FailureKind::StrengtheningDiverged,
      FailureKind::PermuteConditionFailed, FailureKind::SideCondition,
  };
  for (FailureKind K : Kinds)
    if (Name == failureKindName(K))
      return K;
  return FailureKind::None;
}

std::string pec::clipText(std::string S, size_t MaxLen) {
  if (S.size() <= MaxLen)
    return S;
  S.resize(MaxLen);
  S += " ...<clipped>";
  return S;
}

void pec::flattenConjuncts(const FormulaPtr &F, std::vector<FormulaPtr> &Out) {
  if (F->kind() == FormulaKind::And) {
    for (const FormulaPtr &C : F->children())
      flattenConjuncts(C, Out);
    return;
  }
  if (F->kind() == FormulaKind::True)
    return;
  Out.push_back(F);
}

namespace {

/// Splits an obligation into hypotheses and conclusion. `mkImplies`
/// desugars to disjunction, so the shape at hand is
/// `Or(Not(H1), ..., Not(Hk), D1, ..., Dm)`: negated disjuncts are
/// hypothesis conjunctions, positive disjuncts form the conclusion.
void splitObligation(const FormulaPtr &F, std::vector<FormulaPtr> &Hyps,
                     FormulaPtr &Concl) {
  if (F->kind() == FormulaKind::Or) {
    std::vector<FormulaPtr> Disjuncts;
    for (const FormulaPtr &C : F->children()) {
      if (C->kind() == FormulaKind::Not)
        flattenConjuncts(C->children()[0], Hyps);
      else
        Disjuncts.push_back(C);
    }
    Concl = Formula::mkOr(std::move(Disjuncts));
    return;
  }
  if (F->kind() == FormulaKind::Not) {
    flattenConjuncts(F->children()[0], Hyps);
    Concl = Formula::mkFalse();
    return;
  }
  Concl = F;
}

FormulaPtr rebuild(const std::vector<FormulaPtr> &Hyps,
                   const FormulaPtr &Concl) {
  std::vector<FormulaPtr> Copy = Hyps;
  return Formula::mkImplies(Formula::mkAnd(std::move(Copy)), Concl);
}

} // namespace

MinimizeResult pec::minimizeObligation(Atp &Prover, const FormulaPtr &Check,
                                       uint32_t MaxQueries) {
  telemetry::PurposeScope Tag(telemetry::Purpose::Minimize);
  telemetry::Span Span("explain.minimize", "explain");

  std::vector<FormulaPtr> Hyps;
  FormulaPtr Concl;
  splitObligation(Check, Hyps, Concl);

  MinimizeResult Result;
  Result.OriginalConjuncts = Hyps.size();

  // Greedy deletion: drop a hypothesis for good iff the implication stays
  // invalid without it (logically monotone; the cap guards against ATP
  // budget asymmetries making re-queries expensive). Each probe is an
  // assumption query on the prover's persistent session — the implication
  // `And(W) => Concl` is invalid iff `!Concl /\ And(W)` is satisfiable —
  // so the conclusion's encoding and all learned clauses are shared
  // across the whole deletion sweep.
  FormulaPtr NotConcl = Formula::mkNot(Concl);
  size_t I = 0;
  while (I < Hyps.size() && Result.Queries < MaxQueries) {
    std::vector<FormulaPtr> Without;
    Without.reserve(Hyps.size() - 1);
    for (size_t K = 0; K < Hyps.size(); ++K)
      if (K != I)
        Without.push_back(Hyps[K]);
    ++Result.Queries;
    bool StillInvalid =
        Prover.query(AtpQuery::assumptions(NotConcl, Without)).Verdict;
    if (telemetry::enabled()) {
      std::ostringstream OS;
      OS << "drop hypothesis " << I << "/" << Hyps.size() << ": "
         << (StillInvalid ? "kept dropped" : "load-bearing");
      telemetry::instant("explain.minimize.step", "explain", OS.str());
    }
    if (StillInvalid)
      Hyps = std::move(Without); // I now names the next candidate.
    else
      ++I; // Load-bearing: keep it, move on.
  }

  Result.KeptConjuncts = Hyps.size();
  Result.Minimized = rebuild(Hyps, Concl);
  Span.arg("queries", static_cast<uint64_t>(Result.Queries));
  Span.arg("kept", static_cast<uint64_t>(Result.KeptConjuncts));
  Span.arg("original", static_cast<uint64_t>(Result.OriginalConjuncts));
  return Result;
}

namespace {

/// One-line rendering of a CFG edge's atomic statement for a DOT label.
std::string edgeLabel(const StmtPtr &Atom) {
  std::string S = printStmt(Atom);
  std::string Flat;
  Flat.reserve(S.size());
  bool LastSpace = false;
  for (char C : S) {
    if (C == '\n' || C == '\t' || C == ' ') {
      if (!LastSpace && !Flat.empty())
        Flat.push_back(' ');
      LastSpace = true;
    } else {
      Flat.push_back(C);
      LastSpace = false;
    }
  }
  while (!Flat.empty() && Flat.back() == ' ')
    Flat.pop_back();
  return clipText(std::move(Flat), 60);
}

void renderCluster(std::ostream &OS, const Cfg &G, const char *Prefix,
                   const char *Title) {
  OS << "  subgraph cluster_" << Prefix << " {\n";
  OS << "    label=\"" << escapeDot(Title) << "\";\n";
  OS << "    color=gray50;\n";
  OS << "    fontname=\"Helvetica\";\n";
  for (Location L = 0; L < G.numLocations(); ++L) {
    OS << "    " << Prefix << "_" << L << " [label=\"" << L << "\", shape="
       << (L == G.exit() ? "doublecircle" : "circle")
       << (L == G.entry() ? ", style=bold" : "") << "];\n";
  }
  for (const CfgEdge &E : G.edges())
    OS << "    " << Prefix << "_" << E.From << " -> " << Prefix << "_"
       << E.To << " [label=\"" << escapeDot(edgeLabel(E.Atom))
       << "\", fontsize=10];\n";
  OS << "  }\n";
}

} // namespace

std::string pec::renderProofDot(const Cfg &P1, const Cfg &P2,
                                const CorrelationRelation &R,
                                const TermArena &Arena,
                                const std::string &RuleName,
                                const FailureDiagnosis *D) {
  std::ostringstream OS;
  OS << "digraph pec_proof {\n";
  OS << "  rankdir=TB;\n";
  OS << "  fontname=\"Helvetica\";\n";
  std::string Title = "rule " + RuleName;
  if (D && D->Kind != FailureKind::None)
    Title += std::string(" - NOT PROVED (") + failureKindName(D->Kind) + ")";
  OS << "  label=\"" << escapeDot(Title) << "\";\n";
  OS << "  labelloc=t;\n";
  renderCluster(OS, P1, "p1", "original");
  renderCluster(OS, P2, "p2", "transformed");
  for (const RelEntry &E : R.entries()) {
    bool Failing = D && E.L1 == D->L1 && E.L2 == D->L2;
    std::string Phi = clipText(E.Pred->str(Arena), 120);
    OS << "  p1_" << E.L1 << " -> p2_" << E.L2
       << " [style=dashed, constraint=false, dir=none, fontsize=9, "
       << (Failing ? "color=red, fontcolor=red, penwidth=2, "
                   : "color=steelblue, fontcolor=steelblue, ")
       << "label=\"" << escapeDot(Phi) << "\"];\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string pec::renderDiagnosis(const FailureDiagnosis &D,
                                 const std::string &RuleName) {
  std::ostringstream OS;
  OS << "rule " << RuleName << ": NOT PROVED";
  if (D.Kind != FailureKind::None)
    OS << " [" << failureKindName(D.Kind) << "]";
  OS << "\n";

  if (D.L1 != InvalidLocation && D.L2 != InvalidLocation) {
    OS << "  failing correlation entry: (" << D.L1 << ", " << D.L2 << ")\n";
    if (!D.EntryPredicate.empty())
      OS << "  entry predicate: " << D.EntryPredicate << "\n";
  }
  if (D.MoverSide == 1)
    OS << "  mover: original program\n";
  else if (D.MoverSide == 2)
    OS << "  mover: transformed program\n";

  if (!D.AssumedFacts.empty()) {
    OS << "  assumed side-condition facts:\n";
    for (const std::string &F : D.AssumedFacts)
      OS << "    - " << F << "\n";
  }

  if (!D.Model.empty()) {
    OS << "  counterexample model ("
       << (D.Model.Complete ? "complete" : "partial") << "):\n";
    for (const AtpModelEntry &E : D.Model.Values)
      OS << "    " << E.Term << " = " << E.Value << "\n";
    const size_t MaxLits = 12;
    if (!D.Model.Literals.empty()) {
      OS << "    committed literals:\n";
      for (size_t I = 0; I < D.Model.Literals.size() && I < MaxLits; ++I)
        OS << "      " << D.Model.Literals[I] << "\n";
      if (D.Model.Literals.size() > MaxLits)
        OS << "      ... (" << (D.Model.Literals.size() - MaxLits)
           << " more)\n";
    }
  } else if (D.Kind == FailureKind::ObligationInvalid ||
             D.Kind == FailureKind::StrengtheningDiverged) {
    OS << "  counterexample model: none (ATP budget exhausted; the failure "
          "is conservative)\n";
  }

  if (!D.Obligation.empty())
    OS << "  failing obligation: " << D.Obligation << "\n";
  if (!D.MinimizedObligation.empty()) {
    OS << "  minimized obligation (" << D.MinimizedConjuncts << "/"
       << D.ObligationConjuncts << " hypotheses kept, " << D.MinimizerQueries
       << " ATP queries): " << D.MinimizedObligation << "\n";
    if (D.MinimizedConjuncts == 0 && D.ObligationConjuncts > 0)
      OS << "    (no hypothesis is load-bearing: the required predicate is "
            "falsifiable outright)\n";
  }

  if (!D.StrengtheningTrail.empty()) {
    OS << "  strengthening trail:\n";
    for (const std::string &Line : D.StrengtheningTrail)
      OS << "    - " << Line << "\n";
  }
  return OS.str();
}
