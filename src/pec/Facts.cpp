//===- Facts.cpp - Side-condition fact catalog ----------------------------------===//

#include "pec/Facts.h"

#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"

using namespace pec;

namespace {

/// State-dependencies of an expression: variable names (concrete and
/// variable meta-variables share one namespace after lowering) and
/// expression meta-variables.
struct ExprDeps {
  std::set<Symbol> Vars;
  std::set<Symbol> ExprMetas;
};

void collectDeps(const ExprPtr &E, ExprDeps &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return;
  case ExprKind::Var:
  case ExprKind::MetaVar:
    Out.Vars.insert(E->name());
    return;
  case ExprKind::MetaExpr:
    Out.ExprMetas.insert(E->name());
    return;
  case ExprKind::ArrayRead:
    Out.Vars.insert(E->name());
    collectDeps(E->index(), Out);
    return;
  case ExprKind::Binary:
    collectDeps(E->lhs(), Out);
    collectDeps(E->rhs(), Out);
    return;
  case ExprKind::Unary:
    collectDeps(E->lhs(), Out);
    return;
  }
}

/// Builder that walks the side condition and accumulates the ProofContext.
class ContextBuilder {
public:
  ContextBuilder(const Rule &R, const Cfg &Orig, const Cfg &Trans,
                 const std::vector<FactDecl> &UserFacts)
      : R(R), Orig(Orig), Trans(Trans), UserFacts(UserFacts) {}

  Expected<ProofContext> run() {
    Ctx.Env.Kinds.collectFrom(R.Before);
    Ctx.Env.Kinds.collectFrom(R.After);
    collectHoleMasks(R.Before);
    collectHoleMasks(R.After);
    if (std::optional<Diag> D = walk(R.Cond, /*Bound=*/{}))
      return *D;
    return std::move(Ctx);
  }

private:
  /// The `S1[I]` pattern: the variable meta-variables inside a hole
  /// argument are read only through the hole and never modified (Sec. 2.1),
  /// i.e. masked and preserved.
  void collectHoleMasks(const StmtPtr &Program) {
    forEachStmt(Program, [this](const StmtPtr &N) {
      if (N->kind() != StmtKind::MetaStmt || N->holeArgs().empty())
        return;
      MetaStmtInfo &Info = Ctx.Env.StmtInfo[N->metaName()];
      for (const ExprPtr &H : N->holeArgs()) {
        ExprDeps Deps;
        collectDeps(H, Deps);
        for (Symbol V : Deps.Vars) {
          Info.MaskedVars.insert(V);
          Info.PreservedVars.insert(V);
        }
      }
    });
  }

  std::optional<Diag> walk(const SideCondPtr &C,
                           const std::vector<Symbol> &Bound) {
    switch (C->kind()) {
    case SideCondKind::True:
      return std::nullopt;
    case SideCondKind::And:
      for (const SideCondPtr &Child : C->children())
        if (std::optional<Diag> D = walk(Child, Bound))
          return D;
      return std::nullopt;
    case SideCondKind::Forall: {
      std::vector<Symbol> Inner = Bound;
      for (Symbol B : C->boundVars())
        Inner.push_back(B);
      return walk(C->children()[0], Inner);
    }
    case SideCondKind::Atom:
      return handleAtom(*C, Bound);
    case SideCondKind::Or:
    case SideCondKind::Not:
      return Diag("side conditions with disjunction or negation are not "
                  "supported by the checker");
    }
    return std::nullopt;
  }

  /// Registers the assume instantiator \p Fn at the location of \p Label.
  std::optional<Diag> addLocationFact(Symbol Label, FactInstantiator Fn,
                                      bool Universal = true) {
    Location L = Orig.locationOfLabel(Label);
    if (L != InvalidLocation) {
      Ctx.OrigFacts[L].push_back(LocatedFact{std::move(Fn), Universal});
      return std::nullopt;
    }
    L = Trans.locationOfLabel(Label);
    if (L != InvalidLocation) {
      Ctx.TransFacts[L].push_back(LocatedFact{std::move(Fn), Universal});
      return std::nullopt;
    }
    return Diag("side-condition label '" + std::string(Label.str()) +
                "' does not occur in either program");
  }

  std::optional<Diag> handleAtom(const SideCond &Atom,
                                 const std::vector<Symbol> &Bound) {
    std::string_view Fact = Atom.factName().str();
    const std::vector<FactArg> &Args = Atom.args();
    bool Ground = Bound.empty();

    auto WrongArgs = [&](const char *Want) {
      return Diag("fact " + std::string(Fact) + " expects " + Want);
    };

    if (Fact == "DoesNotModify" || Fact == "DoesNotAccess") {
      if (Args.size() != 2 || !Args[0].isStmt() || !Args[1].isExpr())
        return WrongArgs("(statement, expression) arguments");
      if (!Ground)
        return Diag("quantified DoesNotModify/DoesNotAccess is unsupported");
      StmtPtr S = Args[0].S;
      ExprPtr X = Args[1].E;
      if (X->kind() == ExprKind::Var || X->kind() == ExprKind::MetaVar) {
        // Structural: frame (and mask for DoesNotAccess).
        MetaStmtInfo &Info = Ctx.Env.StmtInfo[S->metaName()];
        Info.PreservedVars.insert(X->name());
        if (Fact == "DoesNotAccess")
          Info.MaskedVars.insert(X->name());
        return std::nullopt;
      }
      if (Fact == "DoesNotAccess")
        return WrongArgs("a variable second argument");
      // Expression target: eval stability across S, asserted at the label.
      Ctx.EvalStabilityFacts.push_back(
          ProofContext::EvalStability{S->metaName(), X});
      return addLocationFact(
          Atom.atLabel(), [S, X](Lowering &L, TermId State) {
            TermId Before = L.lowerExprInt(State, X);
            TermId After = L.lowerExprInt(L.stepAtom(State, S), X);
            return Formula::mkEq(L.arena(), Before, After);
          });
    }

    if (Fact == "DoesNotUse") {
      if (Args.size() != 2 || !Args[0].isExpr() || !Args[1].isExpr())
        return WrongArgs("(expression-meta, variable) arguments");
      const ExprPtr &E = Args[0].E;
      const ExprPtr &X = Args[1].E;
      if (E->kind() != ExprKind::MetaExpr ||
          (X->kind() != ExprKind::Var && X->kind() != ExprKind::MetaVar))
        return WrongArgs("(expression-meta, variable) arguments");
      Ctx.Env.ExprInfo[E->name()].MaskedVars.insert(X->name());
      return std::nullopt;
    }

    if (Fact == "ConstExpr") {
      if (Args.size() != 1 || !Args[0].isExpr() ||
          Args[0].E->kind() != ExprKind::MetaExpr)
        return WrongArgs("one expression-meta argument");
      Ctx.Env.ExprInfo[Args[0].E->name()].IsConst = true;
      return std::nullopt;
    }

    // Commutativity doubles as Permute-Theorem evidence.
    if (Fact == "Commute") {
      if (Args.size() != 2 || !Args[0].isStmt() || !Args[1].isStmt())
        return WrongArgs("two statement arguments");
      Ctx.Commutes.push_back(
          CommuteEvidence{Bound, Args[0].S, Args[1].S, Atom.atLabel()});
      if (!Ground)
        return std::nullopt; // Quantified: Permute-only evidence.
    }

    // Everything else: look the meaning up in the catalog (user
    // declarations take precedence) and insert assume instances at the
    // label (paper's InsertAssumes).
    const FactDecl *Decl = nullptr;
    for (const FactDecl &D : UserFacts)
      if (D.Name == Atom.factName())
        Decl = &D;
    if (!Decl)
      for (const FactDecl &D : builtinFactDecls())
        if (D.Name == Atom.factName())
          Decl = &D;
    if (!Decl)
      return Diag("unknown side-condition fact '" + std::string(Fact) +
                  "' (declare it with `fact " + std::string(Fact) +
                  "(...) has meaning ...;`)");
    if (!Ground)
      return Diag("quantified " + std::string(Fact) +
                  " is only supported for Commute (as Permute evidence)");
    if (Args.size() != Decl->Params.size())
      return Diag("fact " + std::string(Fact) + " expects " +
                  std::to_string(Decl->Params.size()) + " argument(s)");
    if (std::optional<Diag> D = validateMeaningArgs(*Decl, Args))
      return D;
    FactDecl DeclCopy = *Decl;
    std::vector<FactArg> ArgsCopy = Args;
    return addLocationFact(
        Atom.atLabel(),
        [DeclCopy, ArgsCopy](Lowering &L, TermId State) {
          FormulaPtr F = instantiateMeaning(DeclCopy, ArgsCopy, L, State);
          return F ? F : Formula::mkTrue();
        },
        Decl->Universal);
  }

  /// Checks that each parameter's uses in the meaning match the supplied
  /// argument kinds (Step wants a statement, Eval an expression).
  std::optional<Diag> validateMeaningArgs(const FactDecl &Decl,
                                          const std::vector<FactArg> &Args) {
    std::optional<Diag> Error;
    std::function<void(const MeaningTermPtr &)> WalkTerm =
        [&](const MeaningTermPtr &T) {
          if (!T || Error)
            return;
          if (T->kind() == MeaningTermKind::Step ||
              T->kind() == MeaningTermKind::Eval) {
            for (size_t I = 0; I < Decl.Params.size(); ++I) {
              if (Decl.Params[I] != T->param())
                continue;
              bool WantStmt = T->kind() == MeaningTermKind::Step;
              if (WantStmt != Args[I].isStmt())
                Error = Diag("fact " + std::string(Decl.Name.str()) +
                             ": parameter '" +
                             std::string(T->param().str()) +
                             (WantStmt ? "' needs a statement argument"
                                       : "' needs an expression argument"));
            }
          }
          WalkTerm(T->lhs());
          WalkTerm(T->rhs());
        };
    std::function<void(const MeaningFormPtr &)> WalkForm =
        [&](const MeaningFormPtr &F) {
          if (Error)
            return;
          if (F->lhsTerm())
            WalkTerm(F->lhsTerm());
          if (F->rhsTerm())
            WalkTerm(F->rhsTerm());
          for (const MeaningFormPtr &C : F->children())
            WalkForm(C);
        };
    WalkForm(Decl.Body);
    return Error;
  }

  const Rule &R;
  const Cfg &Orig;
  const Cfg &Trans;
  const std::vector<FactDecl> &UserFacts;
  ProofContext Ctx;
};

} // namespace

bool ProofContext::stmtPreservesExpr(Symbol StmtMeta, const ExprPtr &X) const {
  // Whole-expression stability fact?
  for (const EvalStability &F : EvalStabilityFacts)
    if (F.StmtMeta == StmtMeta && exprEquals(F.Target, X))
      return true;

  ExprDeps Deps;
  collectDeps(X, Deps);
  auto It = Env.StmtInfo.find(StmtMeta);
  const MetaStmtInfo *Info = It == Env.StmtInfo.end() ? nullptr : &It->second;
  for (Symbol V : Deps.Vars)
    if (!Info || !Info->PreservedVars.count(V))
      return false;
  for (Symbol E : Deps.ExprMetas) {
    auto EIt = Env.ExprInfo.find(E);
    if (EIt != Env.ExprInfo.end() && EIt->second.IsConst)
      continue;
    // A non-constant expression meta-variable reads an unknown variable
    // set; only a whole-expression stability fact for exactly E helps.
    bool Stable = false;
    ExprPtr JustE = Expr::mkMetaExpr(E);
    for (const EvalStability &F : EvalStabilityFacts)
      if (F.StmtMeta == StmtMeta && exprEquals(F.Target, JustE))
        Stable = true;
    if (!Stable)
      return false;
  }
  return true;
}

bool ProofContext::atomPreservesExpr(const StmtPtr &Atom,
                                     const ExprPtr &X) const {
  switch (Atom->kind()) {
  case StmtKind::Skip:
  case StmtKind::Assume:
    return true;
  case StmtKind::MetaStmt:
    return stmtPreservesExpr(Atom->metaName(), X);
  case StmtKind::Assign: {
    Symbol Written = Atom->target().Name;
    ExprDeps Deps;
    collectDeps(X, Deps);
    if (Deps.Vars.count(Written))
      return false;
    for (Symbol E : Deps.ExprMetas) {
      auto It = Env.ExprInfo.find(E);
      if (It != Env.ExprInfo.end() && It->second.IsConst)
        continue;
      if (It == Env.ExprInfo.end() || !It->second.MaskedVars.count(Written))
        return false;
    }
    return true;
  }
  default:
    return false;
  }
}

Expected<ProofContext>
pec::buildProofContext(const Rule &R, const Cfg &Orig, const Cfg &Trans,
                       const std::vector<FactDecl> &UserFacts) {
  return ContextBuilder(R, Orig, Trans, UserFacts).run();
}

const std::vector<FactDecl> &pec::builtinFactDecls() {
  static const std::vector<FactDecl> Decls = [] {
    struct Spec {
      const char *Text;
      bool Universal;
    };
    // The meanings of paper Fig. 4, written in the meaning language. The
    // code-property facts are universal (the engine establishes them
    // syntactically, so their instances hold at every state);
    // StrictlyPositive is flow-sensitive.
    const Spec Specs[] = {
        {"fact StrictlyPositive(E) has meaning eval(s, E) > 0;", false},
        {"fact DoesNotModify(S, E) has meaning "
         "eval(s, E) == eval(step(s, S), E);",
         true},
        {"fact Commute(S1, S2) has meaning "
         "step(step(s, S1), S2) == step(step(s, S2), S1);",
         true},
        {"fact Idempotent(S) has meaning "
         "step(step(s, S), S) == step(s, S);",
         true},
        {"fact StableUnder(S1, S2) has meaning "
         "step(s, S1) == s => step(step(s, S2), S1) == step(s, S2);",
         true},
    };
    std::vector<FactDecl> Out;
    for (const Spec &S : Specs) {
      Expected<FactDecl> D = parseFactDecl(S.Text);
      if (!D)
        reportFatalError("builtin fact declaration failed to parse: " +
                         D.error().str());
      D->Universal = S.Universal;
      Out.push_back(D.take());
    }
    return Out;
  }();
  return Decls;
}

namespace {

TermId lowerMeaningTerm(const MeaningTermPtr &T,
                        const std::map<Symbol, const FactArg *> &ParamMap,
                        Lowering &L, TermId State) {
  switch (T->kind()) {
  case MeaningTermKind::StateS:
    return State;
  case MeaningTermKind::Step: {
    TermId In = lowerMeaningTerm(T->lhs(), ParamMap, L, State);
    const FactArg *Arg = ParamMap.at(T->param());
    assert(Arg->isStmt() && "validated at registration");
    return L.stepAtom(In, Arg->S);
  }
  case MeaningTermKind::Eval: {
    TermId In = lowerMeaningTerm(T->lhs(), ParamMap, L, State);
    const FactArg *Arg = ParamMap.at(T->param());
    assert(Arg->isExpr() && "validated at registration");
    return L.lowerExprInt(In, Arg->E);
  }
  case MeaningTermKind::IntLit:
    return L.arena().mkInt(T->intValue());
  case MeaningTermKind::Add:
    return L.arena().mkAdd(lowerMeaningTerm(T->lhs(), ParamMap, L, State),
                           lowerMeaningTerm(T->rhs(), ParamMap, L, State));
  case MeaningTermKind::Sub:
    return L.arena().mkSub(lowerMeaningTerm(T->lhs(), ParamMap, L, State),
                           lowerMeaningTerm(T->rhs(), ParamMap, L, State));
  case MeaningTermKind::Mul:
    return L.arena().mkMul(lowerMeaningTerm(T->lhs(), ParamMap, L, State),
                           lowerMeaningTerm(T->rhs(), ParamMap, L, State));
  case MeaningTermKind::Neg:
    return L.arena().mkNeg(lowerMeaningTerm(T->lhs(), ParamMap, L, State));
  }
  reportFatalError("unhandled meaning term kind");
}

FormulaPtr lowerMeaningForm(const MeaningFormPtr &F,
                            const std::map<Symbol, const FactArg *> &ParamMap,
                            Lowering &L, TermId State) {
  TermArena &A = L.arena();
  switch (F->kind()) {
  case MeaningFormKind::True:
    return Formula::mkTrue();
  case MeaningFormKind::Eq:
    return Formula::mkEq(
        A, lowerMeaningTerm(F->lhsTerm(), ParamMap, L, State),
        lowerMeaningTerm(F->rhsTerm(), ParamMap, L, State));
  case MeaningFormKind::Ne:
    return Formula::mkNot(Formula::mkEq(
        A, lowerMeaningTerm(F->lhsTerm(), ParamMap, L, State),
        lowerMeaningTerm(F->rhsTerm(), ParamMap, L, State)));
  case MeaningFormKind::Lt:
    return Formula::mkLt(
        A, lowerMeaningTerm(F->lhsTerm(), ParamMap, L, State),
        lowerMeaningTerm(F->rhsTerm(), ParamMap, L, State));
  case MeaningFormKind::Le:
    return Formula::mkLe(
        A, lowerMeaningTerm(F->lhsTerm(), ParamMap, L, State),
        lowerMeaningTerm(F->rhsTerm(), ParamMap, L, State));
  case MeaningFormKind::And: {
    std::vector<FormulaPtr> Cs;
    for (const MeaningFormPtr &C : F->children())
      Cs.push_back(lowerMeaningForm(C, ParamMap, L, State));
    return Formula::mkAnd(std::move(Cs));
  }
  case MeaningFormKind::Or: {
    std::vector<FormulaPtr> Cs;
    for (const MeaningFormPtr &C : F->children())
      Cs.push_back(lowerMeaningForm(C, ParamMap, L, State));
    return Formula::mkOr(std::move(Cs));
  }
  case MeaningFormKind::Not:
    return Formula::mkNot(
        lowerMeaningForm(F->children()[0], ParamMap, L, State));
  case MeaningFormKind::Implies:
    return Formula::mkImplies(
        lowerMeaningForm(F->children()[0], ParamMap, L, State),
        lowerMeaningForm(F->children()[1], ParamMap, L, State));
  }
  reportFatalError("unhandled meaning formula kind");
}

} // namespace

FormulaPtr pec::instantiateMeaning(const FactDecl &Decl,
                                   const std::vector<FactArg> &Args,
                                   Lowering &L, TermId State) {
  if (Args.size() != Decl.Params.size())
    return nullptr;
  std::map<Symbol, const FactArg *> ParamMap;
  for (size_t I = 0; I < Decl.Params.size(); ++I)
    ParamMap[Decl.Params[I]] = &Args[I];
  return lowerMeaningForm(Decl.Body, ParamMap, L, State);
}
