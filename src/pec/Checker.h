//===- Checker.h - Bisimulation checking and strengthening ------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Checker module (paper Fig. 9): turns a correlation relation into a
/// bisimulation relation or fails.
///
///   * ComputePaths — enumerates path pairs between relation entries
///     (`->R`), pruning pairs whose joint strongest postcondition is
///     unsatisfiable (Infeasible); a feasible pair ending outside the
///     relation is a failure.
///   * GenerateConstraints — one constraint per path pair: the source
///     entry's predicate must imply the parallel weakest precondition of
///     the target entry's predicate.
///   * SolveConstraints — worklist fixpoint that strengthens source
///     predicates with failed PWPs; strengthening the entry pair fails.
///
/// Fact instances from the rule's side conditions are injected during the
/// symbolic execution of each path (InsertAssumes, realized lazily).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_PEC_CHECKER_H
#define PEC_PEC_CHECKER_H

#include "cfg/Cfg.h"
#include "logic/Lowering.h"
#include "pec/Explain.h"
#include "pec/Facts.h"
#include "pec/Relation.h"
#include "solver/Atp.h"

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pec {

class ThreadPool;

struct CheckerOptions {
  uint32_t MaxStrengthenings = 200;
  size_t MaxPathsPerEntry = 512;
  size_t MaxPathLen = 256;
  /// How many intermediate relation points a *response* path may cross.
  /// Slack lets a lagging program catch up across several of its own
  /// segments (stuttering bisimulation, needed e.g. for hoisting).
  size_t ResponseSlack = 1;
  /// Location pairs the relation must not contain (set by the driver when
  /// a previous attempt showed a seeded pair to be wrong — removing a pair
  /// only weakens the relation, which is always sound).
  std::set<std::pair<Location, Location>> BannedPairs;
  /// Capture a structured FailureDiagnosis (counterexample model, minimized
  /// obligation, strengthening trail) on failure. Costs extra ATP queries
  /// (tagged Purpose::Minimize), so off by default for library callers; the
  /// pipeline driver turns it on.
  bool Diagnose = false;
  /// Query budget of the greedy obligation minimizer.
  uint32_t MaxMinimizerQueries = 48;
  /// How many strengthening-trail lines a diagnosis records.
  size_t MaxTrailEntries = 16;
  /// When set, SolveConstraints prefilters each worklist wave in parallel:
  /// the queued obligations are checked concurrently against the current
  /// predicates (each worker on a private arena + Atp sharing the prover's
  /// AtpCache), constraints that hold are retired, and only failures go
  /// through the sequential strengthen/diagnose path. Pair with an
  /// AtpCache on the prover — the sequential re-check of a failure then
  /// hits the cache instead of re-solving (docs/PARALLELISM.md).
  ThreadPool *Pool = nullptr;
};

struct CheckerResult {
  bool Proved = false;
  FailureKind Kind = FailureKind::None;
  std::string FailureReason;
  /// Structured failure explanation; non-null only when
  /// CheckerOptions::Diagnose was set and the proof failed.
  std::shared_ptr<FailureDiagnosis> Diagnosis;
  uint32_t Strengthenings = 0;
  size_t PathPairs = 0;
  size_t PrunedPathPairs = 0;
  /// Re-checks avoided because the strengthened entry was not among the
  /// response targets blamed by the constraint's last unsat core.
  size_t CoreSkippedRechecks = 0;
  /// On an entry-predicate failure: the non-entry/exit response targets of
  /// the failing constraint — candidates for banning on a retry.
  std::vector<std::pair<Location, Location>> FailedTargets;
};

/// Runs the Checker on relation \p R (predicates are strengthened in
/// place). \p S1 / \p S2 are the state constants the predicates range over.
CheckerResult checkRelation(CorrelationRelation &R, const Cfg &P1,
                            const Cfg &P2, const ProofContext &Ctx,
                            Lowering &Low, Atp &Prover, TermId S1, TermId S2,
                            const CheckerOptions &Options = {});

} // namespace pec

#endif // PEC_PEC_CHECKER_H
