# Empty dependencies file for pec_modules_test.
# This may be replaced when dependencies are built.
