file(REMOVE_RECURSE
  "CMakeFiles/pec_modules_test.dir/pec_modules_test.cpp.o"
  "CMakeFiles/pec_modules_test.dir/pec_modules_test.cpp.o.d"
  "pec_modules_test"
  "pec_modules_test.pdb"
  "pec_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
