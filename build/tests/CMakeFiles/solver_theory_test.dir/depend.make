# Empty dependencies file for solver_theory_test.
# This may be replaced when dependencies are built.
