file(REMOVE_RECURSE
  "CMakeFiles/solver_theory_test.dir/solver_theory_test.cpp.o"
  "CMakeFiles/solver_theory_test.dir/solver_theory_test.cpp.o.d"
  "solver_theory_test"
  "solver_theory_test.pdb"
  "solver_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
