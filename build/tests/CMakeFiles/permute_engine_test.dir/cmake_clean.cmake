file(REMOVE_RECURSE
  "CMakeFiles/permute_engine_test.dir/permute_engine_test.cpp.o"
  "CMakeFiles/permute_engine_test.dir/permute_engine_test.cpp.o.d"
  "permute_engine_test"
  "permute_engine_test.pdb"
  "permute_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permute_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
