# Empty compiler generated dependencies file for permute_engine_test.
# This may be replaced when dependencies are built.
