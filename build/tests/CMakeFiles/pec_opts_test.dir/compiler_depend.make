# Empty compiler generated dependencies file for pec_opts_test.
# This may be replaced when dependencies are built.
