file(REMOVE_RECURSE
  "CMakeFiles/pec_opts_test.dir/pec_opts_test.cpp.o"
  "CMakeFiles/pec_opts_test.dir/pec_opts_test.cpp.o.d"
  "pec_opts_test"
  "pec_opts_test.pdb"
  "pec_opts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_opts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
