file(REMOVE_RECURSE
  "CMakeFiles/rules_files_test.dir/rules_files_test.cpp.o"
  "CMakeFiles/rules_files_test.dir/rules_files_test.cpp.o.d"
  "rules_files_test"
  "rules_files_test.pdb"
  "rules_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
