file(REMOVE_RECURSE
  "CMakeFiles/pec_basic_test.dir/pec_basic_test.cpp.o"
  "CMakeFiles/pec_basic_test.dir/pec_basic_test.cpp.o.d"
  "pec_basic_test"
  "pec_basic_test.pdb"
  "pec_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
