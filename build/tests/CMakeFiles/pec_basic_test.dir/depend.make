# Empty dependencies file for pec_basic_test.
# This may be replaced when dependencies are built.
