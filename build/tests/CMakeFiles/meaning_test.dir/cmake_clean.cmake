file(REMOVE_RECURSE
  "CMakeFiles/meaning_test.dir/meaning_test.cpp.o"
  "CMakeFiles/meaning_test.dir/meaning_test.cpp.o.d"
  "meaning_test"
  "meaning_test.pdb"
  "meaning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
