# Empty dependencies file for meaning_test.
# This may be replaced when dependencies are built.
