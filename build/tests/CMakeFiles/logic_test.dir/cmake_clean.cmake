file(REMOVE_RECURSE
  "CMakeFiles/logic_test.dir/logic_test.cpp.o"
  "CMakeFiles/logic_test.dir/logic_test.cpp.o.d"
  "logic_test"
  "logic_test.pdb"
  "logic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
