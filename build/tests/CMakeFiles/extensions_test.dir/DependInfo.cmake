
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/extensions_test.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pec/CMakeFiles/pec_pec.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pec_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/pec_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/opts/CMakeFiles/pec_opts.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/pec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pec_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
