file(REMOVE_RECURSE
  "CMakeFiles/staged_test.dir/staged_test.cpp.o"
  "CMakeFiles/staged_test.dir/staged_test.cpp.o.d"
  "staged_test"
  "staged_test.pdb"
  "staged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
