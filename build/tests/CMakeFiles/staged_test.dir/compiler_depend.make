# Empty compiler generated dependencies file for staged_test.
# This may be replaced when dependencies are built.
