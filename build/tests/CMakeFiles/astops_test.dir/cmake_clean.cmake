file(REMOVE_RECURSE
  "CMakeFiles/astops_test.dir/astops_test.cpp.o"
  "CMakeFiles/astops_test.dir/astops_test.cpp.o.d"
  "astops_test"
  "astops_test.pdb"
  "astops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
