# Empty compiler generated dependencies file for astops_test.
# This may be replaced when dependencies are built.
