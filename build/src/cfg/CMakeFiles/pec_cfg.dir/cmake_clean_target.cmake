file(REMOVE_RECURSE
  "libpec_cfg.a"
)
