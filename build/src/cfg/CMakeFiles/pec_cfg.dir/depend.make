# Empty dependencies file for pec_cfg.
# This may be replaced when dependencies are built.
