file(REMOVE_RECURSE
  "CMakeFiles/pec_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/pec_cfg.dir/Cfg.cpp.o.d"
  "libpec_cfg.a"
  "libpec_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
