file(REMOVE_RECURSE
  "libpec_lang.a"
)
