file(REMOVE_RECURSE
  "CMakeFiles/pec_lang.dir/Ast.cpp.o"
  "CMakeFiles/pec_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/pec_lang.dir/AstOps.cpp.o"
  "CMakeFiles/pec_lang.dir/AstOps.cpp.o.d"
  "CMakeFiles/pec_lang.dir/Lexer.cpp.o"
  "CMakeFiles/pec_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/pec_lang.dir/Meaning.cpp.o"
  "CMakeFiles/pec_lang.dir/Meaning.cpp.o.d"
  "CMakeFiles/pec_lang.dir/Parser.cpp.o"
  "CMakeFiles/pec_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/pec_lang.dir/Printer.cpp.o"
  "CMakeFiles/pec_lang.dir/Printer.cpp.o.d"
  "CMakeFiles/pec_lang.dir/Rule.cpp.o"
  "CMakeFiles/pec_lang.dir/Rule.cpp.o.d"
  "libpec_lang.a"
  "libpec_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
