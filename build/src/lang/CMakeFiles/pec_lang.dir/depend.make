# Empty dependencies file for pec_lang.
# This may be replaced when dependencies are built.
