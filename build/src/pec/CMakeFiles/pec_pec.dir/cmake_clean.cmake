file(REMOVE_RECURSE
  "CMakeFiles/pec_pec.dir/Checker.cpp.o"
  "CMakeFiles/pec_pec.dir/Checker.cpp.o.d"
  "CMakeFiles/pec_pec.dir/Correlate.cpp.o"
  "CMakeFiles/pec_pec.dir/Correlate.cpp.o.d"
  "CMakeFiles/pec_pec.dir/Facts.cpp.o"
  "CMakeFiles/pec_pec.dir/Facts.cpp.o.d"
  "CMakeFiles/pec_pec.dir/Pec.cpp.o"
  "CMakeFiles/pec_pec.dir/Pec.cpp.o.d"
  "CMakeFiles/pec_pec.dir/Permute.cpp.o"
  "CMakeFiles/pec_pec.dir/Permute.cpp.o.d"
  "CMakeFiles/pec_pec.dir/Relation.cpp.o"
  "CMakeFiles/pec_pec.dir/Relation.cpp.o.d"
  "libpec_pec.a"
  "libpec_pec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_pec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
