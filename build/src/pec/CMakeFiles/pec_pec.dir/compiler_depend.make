# Empty compiler generated dependencies file for pec_pec.
# This may be replaced when dependencies are built.
