
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pec/Checker.cpp" "src/pec/CMakeFiles/pec_pec.dir/Checker.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Checker.cpp.o.d"
  "/root/repo/src/pec/Correlate.cpp" "src/pec/CMakeFiles/pec_pec.dir/Correlate.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Correlate.cpp.o.d"
  "/root/repo/src/pec/Facts.cpp" "src/pec/CMakeFiles/pec_pec.dir/Facts.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Facts.cpp.o.d"
  "/root/repo/src/pec/Pec.cpp" "src/pec/CMakeFiles/pec_pec.dir/Pec.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Pec.cpp.o.d"
  "/root/repo/src/pec/Permute.cpp" "src/pec/CMakeFiles/pec_pec.dir/Permute.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Permute.cpp.o.d"
  "/root/repo/src/pec/Relation.cpp" "src/pec/CMakeFiles/pec_pec.dir/Relation.cpp.o" "gcc" "src/pec/CMakeFiles/pec_pec.dir/Relation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/pec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pec_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
