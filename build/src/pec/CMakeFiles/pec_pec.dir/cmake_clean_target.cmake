file(REMOVE_RECURSE
  "libpec_pec.a"
)
