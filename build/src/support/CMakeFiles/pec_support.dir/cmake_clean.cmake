file(REMOVE_RECURSE
  "CMakeFiles/pec_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/pec_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/pec_support.dir/StringInterner.cpp.o"
  "CMakeFiles/pec_support.dir/StringInterner.cpp.o.d"
  "libpec_support.a"
  "libpec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
