file(REMOVE_RECURSE
  "libpec_support.a"
)
