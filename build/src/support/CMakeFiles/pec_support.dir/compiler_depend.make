# Empty compiler generated dependencies file for pec_support.
# This may be replaced when dependencies are built.
