file(REMOVE_RECURSE
  "CMakeFiles/pec_logic.dir/Lowering.cpp.o"
  "CMakeFiles/pec_logic.dir/Lowering.cpp.o.d"
  "CMakeFiles/pec_logic.dir/Subst.cpp.o"
  "CMakeFiles/pec_logic.dir/Subst.cpp.o.d"
  "CMakeFiles/pec_logic.dir/SymExec.cpp.o"
  "CMakeFiles/pec_logic.dir/SymExec.cpp.o.d"
  "libpec_logic.a"
  "libpec_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
