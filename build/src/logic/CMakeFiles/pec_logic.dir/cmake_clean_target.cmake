file(REMOVE_RECURSE
  "libpec_logic.a"
)
