# Empty compiler generated dependencies file for pec_logic.
# This may be replaced when dependencies are built.
