file(REMOVE_RECURSE
  "libpec_opts.a"
)
