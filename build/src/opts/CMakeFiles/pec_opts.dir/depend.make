# Empty dependencies file for pec_opts.
# This may be replaced when dependencies are built.
