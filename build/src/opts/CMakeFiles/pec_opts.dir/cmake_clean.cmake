file(REMOVE_RECURSE
  "CMakeFiles/pec_opts.dir/Extensions.cpp.o"
  "CMakeFiles/pec_opts.dir/Extensions.cpp.o.d"
  "CMakeFiles/pec_opts.dir/Optimizations.cpp.o"
  "CMakeFiles/pec_opts.dir/Optimizations.cpp.o.d"
  "libpec_opts.a"
  "libpec_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
