# Empty compiler generated dependencies file for pec.
# This may be replaced when dependencies are built.
