file(REMOVE_RECURSE
  "CMakeFiles/pec.dir/pec_main.cpp.o"
  "CMakeFiles/pec.dir/pec_main.cpp.o.d"
  "pec"
  "pec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
