file(REMOVE_RECURSE
  "libpec_solver.a"
)
