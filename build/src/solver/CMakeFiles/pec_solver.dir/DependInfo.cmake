
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/Atp.cpp" "src/solver/CMakeFiles/pec_solver.dir/Atp.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Atp.cpp.o.d"
  "/root/repo/src/solver/Euf.cpp" "src/solver/CMakeFiles/pec_solver.dir/Euf.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Euf.cpp.o.d"
  "/root/repo/src/solver/Formula.cpp" "src/solver/CMakeFiles/pec_solver.dir/Formula.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Formula.cpp.o.d"
  "/root/repo/src/solver/Lia.cpp" "src/solver/CMakeFiles/pec_solver.dir/Lia.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Lia.cpp.o.d"
  "/root/repo/src/solver/Sat.cpp" "src/solver/CMakeFiles/pec_solver.dir/Sat.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Sat.cpp.o.d"
  "/root/repo/src/solver/Term.cpp" "src/solver/CMakeFiles/pec_solver.dir/Term.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Term.cpp.o.d"
  "/root/repo/src/solver/Theory.cpp" "src/solver/CMakeFiles/pec_solver.dir/Theory.cpp.o" "gcc" "src/solver/CMakeFiles/pec_solver.dir/Theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
