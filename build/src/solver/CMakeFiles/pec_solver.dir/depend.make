# Empty dependencies file for pec_solver.
# This may be replaced when dependencies are built.
