file(REMOVE_RECURSE
  "CMakeFiles/pec_solver.dir/Atp.cpp.o"
  "CMakeFiles/pec_solver.dir/Atp.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Euf.cpp.o"
  "CMakeFiles/pec_solver.dir/Euf.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Formula.cpp.o"
  "CMakeFiles/pec_solver.dir/Formula.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Lia.cpp.o"
  "CMakeFiles/pec_solver.dir/Lia.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Sat.cpp.o"
  "CMakeFiles/pec_solver.dir/Sat.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Term.cpp.o"
  "CMakeFiles/pec_solver.dir/Term.cpp.o.d"
  "CMakeFiles/pec_solver.dir/Theory.cpp.o"
  "CMakeFiles/pec_solver.dir/Theory.cpp.o.d"
  "libpec_solver.a"
  "libpec_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
