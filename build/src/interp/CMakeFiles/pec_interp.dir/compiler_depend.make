# Empty compiler generated dependencies file for pec_interp.
# This may be replaced when dependencies are built.
