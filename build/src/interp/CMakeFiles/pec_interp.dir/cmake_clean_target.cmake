file(REMOVE_RECURSE
  "libpec_interp.a"
)
