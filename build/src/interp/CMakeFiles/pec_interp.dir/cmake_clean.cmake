file(REMOVE_RECURSE
  "CMakeFiles/pec_interp.dir/Interp.cpp.o"
  "CMakeFiles/pec_interp.dir/Interp.cpp.o.d"
  "libpec_interp.a"
  "libpec_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
