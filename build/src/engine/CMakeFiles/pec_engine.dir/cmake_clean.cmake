file(REMOVE_RECURSE
  "CMakeFiles/pec_engine.dir/Apply.cpp.o"
  "CMakeFiles/pec_engine.dir/Apply.cpp.o.d"
  "CMakeFiles/pec_engine.dir/Match.cpp.o"
  "CMakeFiles/pec_engine.dir/Match.cpp.o.d"
  "libpec_engine.a"
  "libpec_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
