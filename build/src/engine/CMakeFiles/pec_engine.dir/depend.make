# Empty dependencies file for pec_engine.
# This may be replaced when dependencies are built.
