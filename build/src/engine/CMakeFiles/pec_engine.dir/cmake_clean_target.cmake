file(REMOVE_RECURSE
  "libpec_engine.a"
)
