# Empty dependencies file for bench_atp.
# This may be replaced when dependencies are built.
