file(REMOVE_RECURSE
  "CMakeFiles/bench_atp.dir/bench_atp.cpp.o"
  "CMakeFiles/bench_atp.dir/bench_atp.cpp.o.d"
  "bench_atp"
  "bench_atp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
