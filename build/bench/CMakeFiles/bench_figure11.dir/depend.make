# Empty dependencies file for bench_figure11.
# This may be replaced when dependencies are built.
