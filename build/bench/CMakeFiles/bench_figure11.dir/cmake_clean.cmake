file(REMOVE_RECURSE
  "CMakeFiles/bench_figure11.dir/bench_figure11.cpp.o"
  "CMakeFiles/bench_figure11.dir/bench_figure11.cpp.o.d"
  "bench_figure11"
  "bench_figure11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
