file(REMOVE_RECURSE
  "CMakeFiles/bench_engine.dir/bench_engine.cpp.o"
  "CMakeFiles/bench_engine.dir/bench_engine.cpp.o.d"
  "bench_engine"
  "bench_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
