file(REMOVE_RECURSE
  "CMakeFiles/loop_interchange.dir/loop_interchange.cpp.o"
  "CMakeFiles/loop_interchange.dir/loop_interchange.cpp.o.d"
  "loop_interchange"
  "loop_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
