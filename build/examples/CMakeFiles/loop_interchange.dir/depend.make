# Empty dependencies file for loop_interchange.
# This may be replaced when dependencies are built.
