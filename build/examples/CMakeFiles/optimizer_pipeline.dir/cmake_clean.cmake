file(REMOVE_RECURSE
  "CMakeFiles/optimizer_pipeline.dir/optimizer_pipeline.cpp.o"
  "CMakeFiles/optimizer_pipeline.dir/optimizer_pipeline.cpp.o.d"
  "optimizer_pipeline"
  "optimizer_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
