# Empty compiler generated dependencies file for optimizer_pipeline.
# This may be replaced when dependencies are built.
