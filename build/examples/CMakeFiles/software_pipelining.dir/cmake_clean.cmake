file(REMOVE_RECURSE
  "CMakeFiles/software_pipelining.dir/software_pipelining.cpp.o"
  "CMakeFiles/software_pipelining.dir/software_pipelining.cpp.o.d"
  "software_pipelining"
  "software_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
