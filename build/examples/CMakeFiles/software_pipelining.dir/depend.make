# Empty dependencies file for software_pipelining.
# This may be replaced when dependencies are built.
