file(REMOVE_RECURSE
  "CMakeFiles/translation_validation.dir/translation_validation.cpp.o"
  "CMakeFiles/translation_validation.dir/translation_validation.cpp.o.d"
  "translation_validation"
  "translation_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
