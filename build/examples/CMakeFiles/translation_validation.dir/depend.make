# Empty dependencies file for translation_validation.
# This may be replaced when dependencies are built.
