//===- loop_interchange.cpp - The Permute module on paper Figure 10 -------------===//
//
// Loop interchange (paper Fig. 10) is a loop *reordering* transformation:
// it has no bisimulation, so PEC proves it with the Permute module
// (Theorem 2), inferring the index mapping F((i,j)) = (j,i) and
// discharging the theorem's conditions with the ATP. The quantified
// Commute side condition covers the reordered instance pairs.
//
// The proven rule is then applied to a concrete 2-D stencil whose body
// touches each cell exactly once (so all distinct instances commute), and
// validated with the interpreter.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <cstdio>

using namespace pec;

int main() {
  Rule R = parseRuleOrDie(findOpt("loop_interchange").RuleText);
  std::printf("== rule ==\n%s\n", printRule(R).c_str());

  PecResult Proof = proveRule(R);
  std::printf("== proof ==\nproved: %s (via %s)\nATP queries: %llu\n",
              Proof.Proved ? "yes" : "NO",
              Proof.UsedPermute ? "the Permute Theorem" : "bisimulation",
              static_cast<unsigned long long>(Proof.AtpQueries));
  if (!Proof.Proved || !Proof.UsedPermute) {
    std::fprintf(stderr, "unexpected: %s\n", Proof.FailureReason.c_str());
    return 1;
  }
  std::printf("index variables that must be dead after the loops:");
  for (Symbol V : Proof.RequiredDeadVars)
    std::printf(" %s", std::string(V.str()).c_str());
  std::printf("\n\n");

  // A concrete column-major traversal to interchange into row-major.
  StmtPtr Program = *parseProgram(R"(
    for (i := lo; i <= hi; i++) {
      for (j := lo; j <= hj; j++) {
        g[i * 64 + j] := g[i * 64 + j] + i * j;
      }
    }
  )");
  std::printf("== before ==\n%s", printStmt(Program).c_str());

  // The engine must see that distinct (i,j) instances commute — each
  // instance touches only g[i*64+j], but proving i*64+j != k*64+l for
  // (i,j) != (k,l) is nonlinear, beyond the engine's dependence test. In a
  // compiler, dependence analysis (e.g. the Omega test, Sec. 6) would
  // discharge it; here the oracle plays that role.
  EngineOptions Options;
  Options.RequiredDeadVars = Proof.RequiredDeadVars;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &) {
    return Fact == "Commute";
  };

  bool Changed = false;
  StmtPtr Interchanged = applyRule(Program, R, pickFirst, Options, Changed);
  std::printf("\n== after ==\n%s", printStmt(Interchanged).c_str());
  if (!Changed) {
    std::fprintf(stderr, "unexpected: the rule did not fire\n");
    return 1;
  }

  // Validate dynamically. The proof treats the index variables as dead
  // after the nest (see DESIGN.md), so compare all non-index state.
  int Failures = 0;
  for (int64_t Hi = -1; Hi <= 3; ++Hi) {
    for (int64_t Hj = -1; Hj <= 3; ++Hj) {
      State Init;
      Init.setScalar(Symbol::get("lo"), 0);
      Init.setScalar(Symbol::get("hi"), Hi);
      Init.setScalar(Symbol::get("hj"), Hj);
      ExecResult Before = run(Program, Init);
      ExecResult After = run(Interchanged, Init);
      if (!Before.ok() || !After.ok()) {
        ++Failures;
        continue;
      }
      // Erase the dead index variables before comparing.
      State B = Before.Final, A = After.Final;
      B.setScalar(Symbol::get("i"), 0);
      B.setScalar(Symbol::get("j"), 0);
      A.setScalar(Symbol::get("i"), 0);
      A.setScalar(Symbol::get("j"), 0);
      if (!(B == A)) {
        std::printf("MISMATCH at hi=%lld hj=%lld\n",
                    static_cast<long long>(Hi), static_cast<long long>(Hj));
        ++Failures;
      }
    }
  }
  if (Failures == 0)
    std::printf("\ndynamic check: interchanged nest matches the original "
                "(modulo dead index variables) on a 5x5 bound sweep\n");
  return Failures == 0 ? 0 : 1;
}
