//===- quickstart.cpp - PEC in five minutes -------------------------------------===//
//
// Quickstart for the PEC library (Kundu, Tatlock & Lerner, PLDI 2009):
//
//   1. write an optimization as a parameterized rewrite rule;
//   2. prove it correct once and for all with `proveRule`;
//   3. run it on a concrete program with the execution engine;
//   4. sanity-check the rewrite dynamically with the interpreter.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Pec.h"

#include <cstdio>
#include <cstdlib>

using namespace pec;

int main() {
  // -- 1. An optimization: copy propagation through an arbitrary statement
  //       that uses X only via holes (paper Sec. 2.1 hole patterns).
  const char *RuleText = R"(
    rule copy_prop {
      X := Y;
      S1[X];
    } => {
      X := Y;
      S1[Y];
    }
  )";
  Expected<Rule> R = parseRule(RuleText);
  if (!R) {
    std::fprintf(stderr, "rule parse error: %s\n", R.error().str().c_str());
    return 1;
  }
  std::printf("== rule ==\n%s\n", printRule(*R).c_str());

  // -- 2. Prove it correct, once and for all.
  PecResult Proof = proveRule(*R);
  std::printf("== proof ==\nproved: %s\nATP queries: %llu\n"
              "correlation entries: %zu\npath constraints: %zu\n\n",
              Proof.Proved ? "yes" : "NO",
              static_cast<unsigned long long>(Proof.AtpQueries),
              Proof.RelationSize, Proof.PathPairs);
  if (!Proof.Proved) {
    std::fprintf(stderr, "unexpected: %s\n", Proof.FailureReason.c_str());
    return 1;
  }

  // -- 3. Run it on a concrete program.
  Expected<StmtPtr> Program = parseProgram(R"(
    x := y;
    a[x] := a[x] + x;
    z := x * 2;
  )");
  if (!Program) {
    std::fprintf(stderr, "parse error: %s\n", Program.error().str().c_str());
    return 1;
  }

  bool Changed = false;
  StmtPtr Optimized =
      applyRule(*Program, *R, pickFirst, EngineOptions{}, Changed);
  std::printf("== before ==\n%s\n== after ==\n%s\n",
              printStmt(*Program).c_str(), printStmt(Optimized).c_str());
  if (!Changed) {
    std::fprintf(stderr, "unexpected: the rule did not fire\n");
    return 1;
  }

  // -- 4. Dynamic sanity check: the proof guarantees this can never fail.
  for (int64_t Y = -3; Y <= 3; ++Y) {
    State Init;
    Init.setScalar(Symbol::get("y"), Y);
    Init.setArrayElem(Symbol::get("a"), Y, 10 * Y);
    ExecResult Before = run(*Program, Init);
    ExecResult After = run(Optimized, Init);
    if (!(Before.ok() && After.ok() && Before.Final == After.Final)) {
      std::fprintf(stderr, "MISMATCH at y=%lld\n",
                   static_cast<long long>(Y));
      return 1;
    }
  }
  std::printf("dynamic check: original and optimized agree on all tested "
              "states\n");
  return 0;
}
