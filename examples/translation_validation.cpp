//===- translation_validation.cpp - PEC subsumes translation validation ---------===//
//
// Paper Sec. 2.3: because parameterized programs may contain concrete
// statements, PEC degenerates to classic translation validation when both
// programs are fully concrete. This example validates a hand-"compiled"
// kernel against its source: constant folding, copy propagation, dead
// branch elimination and a strength-reduced accumulation — and then shows
// a miscompilation being caught.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Pec.h"

#include <cstdio>

using namespace pec;

namespace {

StmtPtr parse(const char *Src) {
  Expected<StmtPtr> S = parseProgram(Src);
  if (!S) {
    std::fprintf(stderr, "parse error: %s\n", S.error().str().c_str());
    std::exit(1);
  }
  return S.take();
}

} // namespace

int main() {
  StmtPtr Source = parse(R"(
    scale := 4;
    if (scale > 0) {
      base := offset + scale * 2;
    } else {
      base := 0 - 1;
    }
    i := 0;
    while (i < n) {
      out[i] := in[i] * scale + base;
      i++;
    }
  )");

  // What an optimizer might emit: the branch folded, the constant
  // propagated, the multiplication rewritten as shifts-and-adds style
  // (x * 4 == (x + x) + (x + x)).
  StmtPtr Compiled = parse(R"(
    scale := 4;
    base := offset + 8;
    i := 0;
    while (i < n) {
      out[i] := (in[i] + in[i]) + (in[i] + in[i]) + base;
      i++;
    }
  )");

  std::printf("== source ==\n%s\n== compiled ==\n%s\n",
              printStmt(Source).c_str(), printStmt(Compiled).c_str());

  PecResult Good = proveEquivalence(Source, Compiled);
  std::printf("validation: %s (ATP queries: %llu, %.3fs)\n",
              Good.Proved ? "EQUIVALENT" : "NOT PROVEN",
              static_cast<unsigned long long>(Good.AtpQueries),
              Good.Seconds);
  if (!Good.Proved) {
    std::fprintf(stderr, "unexpected: %s\n", Good.FailureReason.c_str());
    return 1;
  }

  // A buggy "optimization": the constant 8 became 6.
  StmtPtr Miscompiled = parse(R"(
    scale := 4;
    base := offset + 6;
    i := 0;
    while (i < n) {
      out[i] := (in[i] + in[i]) + (in[i] + in[i]) + base;
      i++;
    }
  )");
  PecResult Bad = proveEquivalence(Source, Miscompiled);
  std::printf("miscompilation: %s\n",
              Bad.Proved ? "MISSED (bug!)" : "correctly rejected");
  return (Good.Proved && !Bad.Proved) ? 0 : 1;
}
