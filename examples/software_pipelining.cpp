//===- software_pipelining.cpp - Paper Figures 1, 6 and 12 end to end -----------===//
//
// Reproduces the paper's running example:
//
//   * Figure 1(a): the three-array loop with a serial dependence chain;
//   * Figures 2/3: the two software-pipelining rules, proven correct by PEC;
//   * Figure 12: the SwPipe driver composing them under a profitability
//     heuristic that reduces dependencies in the loop body;
//   * Figure 1(b)/6: the pipelined result, where in the steady state
//     a[] runs two iterations ahead and b[] one iteration ahead.
//
// The rewritten program is validated against the original with the
// interpreter on a sweep of initial states.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <cstdio>

using namespace pec;

namespace {

/// Counts read-after-write dependent adjacent pairs among the statements of
/// the (unique) loop body of \p Program.
int bodyDependencies(const StmtPtr &Program) {
  StmtPtr Body;
  forEachStmt(Program, [&Body](const StmtPtr &S) {
    if (S->kind() == StmtKind::While && !Body)
      Body = S->body();
  });
  if (!Body || Body->kind() != StmtKind::Seq)
    return 0;
  const std::vector<StmtPtr> &Items = Body->stmts();
  int Deps = 0;
  for (size_t I = 0; I < Items.size(); ++I)
    for (size_t K = I + 1; K < Items.size(); ++K)
      if (!fragmentsIndependent(Items[I], Items[K]))
        ++Deps;
  return Deps;
}

} // namespace

int main() {
  const OptEntry &Swp = findOpt("software_pipelining");
  Rule T1 = parseRuleOrDie(Swp.RuleText);          // Fig. 2: retiming.
  Rule T2 = parseRuleOrDie(Swp.ExtraRuleTexts[0]); // Fig. 3: reordering.

  // -- Prove both rules once and for all (paper Sec. 2.2).
  for (const Rule *R : {&T1, &T2}) {
    PecResult Proof = proveRule(*R);
    std::printf("proved %-22s  ATP queries: %3llu  time: %.3fs\n",
                R->Name.c_str(),
                static_cast<unsigned long long>(Proof.AtpQueries),
                Proof.Seconds);
    if (!Proof.Proved) {
      std::fprintf(stderr, "  FAILED: %s\n", Proof.FailureReason.c_str());
      return 1;
    }
  }

  // -- Figure 1(a).
  StmtPtr Original = *parseProgram(R"(
    i := 0;
    while (i < n) {
      a[i] += 1;
      b[i] += a[i];
      c[i] += b[i];
      i++;
    }
  )");
  std::printf("\n== Figure 1(a): original ==\n%s",
              printStmt(Original).c_str());

  // -- Engine options: the trip-count fact StrictlyPositive(...) is beyond
  //    syntactic checking; a compiler would discharge it with range
  //    analysis. Here the "analysis" is the programmer's knowledge that
  //    this kernel only runs with n >= 2.
  EngineOptions Options;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &Args) {
    return Fact == "StrictlyPositive" &&
           (Args.at(0) == "n" || Args.at(0) == "n - 1");
  };

  // -- Figure 12's pi_sw: pick the retiming match that, after the
  //    reordering rule settles, yields the fewest dependencies in the new
  //    loop body; decline when no match strictly improves.
  ProfitabilityFn PiSw = [&](const std::vector<MatchSite> &Sites,
                             const StmtPtr &Program) -> int {
    int Best = -1;
    int BestDeps = bodyDependencies(Program); // Require strict improvement.
    for (size_t I = 0; I < Sites.size(); ++I) {
      StmtPtr Candidate = rewriteAt(Program, Sites[I],
                                    instantiateStmt(T1.After, Sites[I].B));
      Candidate = applyRuleToFixpoint(Candidate, T2, pickFirst, Options);
      int Deps = bodyDependencies(Candidate);
      if (Deps < BestDeps) {
        BestDeps = Deps;
        Best = static_cast<int>(I);
      }
    }
    return Best;
  };

  StmtPtr Pipelined = swPipe(Original, T1, T2, PiSw, Options);
  std::printf("\n== after SwPipe (Figure 1(b) schedule) ==\n%s",
              printStmt(Pipelined).c_str());

  // -- Validate dynamically for every n in [2, 8] and varied array data.
  int Failures = 0;
  for (int64_t N = 2; N <= 8; ++N) {
    State Init;
    Init.setScalar(Symbol::get("n"), N);
    for (int64_t K = 0; K < N; ++K) {
      Init.setArrayElem(Symbol::get("a"), K, 3 * K + 1);
      Init.setArrayElem(Symbol::get("b"), K, K - 7);
      Init.setArrayElem(Symbol::get("c"), K, 5 - K);
    }
    ExecResult Before = run(Original, Init);
    ExecResult After = run(Pipelined, Init);
    if (!(Before.ok() && After.ok() && Before.Final == After.Final)) {
      std::printf("MISMATCH at n=%lld\n", static_cast<long long>(N));
      ++Failures;
    }
  }
  if (Failures == 0)
    std::printf("\ndynamic check: pipelined program matches the original "
                "for n in [2, 8]\n");
  return Failures == 0 ? 0 : 1;
}
