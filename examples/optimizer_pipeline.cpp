//===- optimizer_pipeline.cpp - A mini optimizer built from proven rules --------===//
//
// The paper's motivation: compilers as open-ended extensible frameworks
// whose optimizations are proven before they run. This example assembles a
// small optimizer from PEC-proven rules — constant propagation, copy
// propagation, CSE, dead store elimination, loop unswitching, loop
// invariant hoisting — runs it to a fixpoint over a kernel, and validates
// the whole pipeline dynamically.
//
// Every rule is (re)proven at startup; the pipeline refuses to include a
// rule whose proof fails.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Extensions.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <cstdio>
#include <vector>

using namespace pec;

int main() {
  // -- Assemble the pipeline from both suites.
  struct PipelineRule {
    Rule R;
    EngineOptions Options;
  };
  std::vector<PipelineRule> Pipeline;
  auto AddRule = [&](const OptEntry &Entry) {
    Rule R = parseRuleOrDie(Entry.RuleText);
    PecResult Proof = proveRule(R);
    std::printf("  %-34s %s\n", R.Name.c_str(),
                Proof.Proved ? "proved" : "REJECTED");
    if (!Proof.Proved)
      return;
    PipelineRule P;
    P.R = std::move(R);
    P.Options.RequiredDeadVars = Proof.RequiredDeadVars;
    Pipeline.push_back(std::move(P));
  };

  // Phase order is the (untrusted) heuristic part of an optimizer: CSE
  // before the propagations (they expose each other's opportunities in one
  // direction only — both directions are proven correct, so a bad order
  // can loop but never miscompile).
  std::printf("building the pipeline:\n");
  AddRule(findOpt("common_subexpression_elimination"));
  AddRule(findOpt("constant_propagation"));
  AddRule(findOpt("copy_propagation"));
  for (const OptEntry &E : extensionSuite())
    if (E.Name == "constant_branch_elimination" ||
        E.Name == "strength_reduction" ||
        E.Name == "dead_store_elimination")
      AddRule(E);

  // -- The kernel: a constant-foldable branch flag, a redundant
  //    subexpression, a dead store, and a multiply-by-two.
  StmtPtr Program = *parseProgram(R"(
    flag := 1;
    base := p + q;
    dead := p * 9;
    dead := base;
    v := p + q;
    i := 0;
    while (i < n) {
      if (flag > 0) {
        w := v * 2;
      } else {
        w := 0 - v;
      }
      out[i] := w;
      i := i + 1;
    }
  )");
  std::printf("\n== before ==\n%s", printStmt(Program).c_str());

  // -- One staged pass, each phase to fixpoint.
  StmtPtr Current = Program;
  int TotalApplications = 0;
  for (const PipelineRule &P : Pipeline) {
    for (int I = 0; I < 16; ++I) {
      bool Changed = false;
      Current = applyRule(Current, P.R, pickFirst, P.Options, Changed);
      if (!Changed)
        break;
      ++TotalApplications;
    }
  }
  std::printf("\n== after %d rule applications ==\n%s", TotalApplications,
              printStmt(Current).c_str());

  // -- Validate the composition dynamically.
  int Failures = 0;
  for (int Seed = 0; Seed < 24; ++Seed) {
    State Init;
    Init.setScalar(Symbol::get("p"), Seed % 7 - 3);
    Init.setScalar(Symbol::get("q"), (Seed * 5) % 11 - 5);
    Init.setScalar(Symbol::get("n"), Seed % 5);
    ExecResult R1 = run(Program, Init);
    ExecResult R2 = run(Current, Init);
    if (!(R1.ok() && R2.ok() && R1.Final == R2.Final)) {
      std::printf("MISMATCH at seed %d\n", Seed);
      ++Failures;
    }
  }
  if (Failures == 0)
    std::printf("\ndynamic check: pipeline output matches the original on "
                "24 random states\n");
  return Failures == 0 && TotalApplications > 0 ? 0 : 1;
}
